// Network Shared Disks and their servers.
//
// An Nsd names one block device plus the nodes that serve it: a primary
// NSD server and an optional backup (GPFS semantics — clients fail over
// to the backup when the primary node dies; bench/tab and tests inject
// exactly that). The 2005 production system of §5 is 64 dual-IA64 NSD
// servers, each with a single GbE and a single FC HBA, fronting 32
// DS4100 trays.
//
// NsdServer is the service half: per-request CPU, optional cipher cost
// (cipherList=encrypt charges both endpoints), then the device I/O.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpfs/token.hpp"
#include "net/network.hpp"
#include "sim/serial_resource.hpp"
#include "storage/block_device.hpp"

namespace mgfs::gpfs {

/// One device-contiguous piece of a vectored NSD request.
struct IoExtent {
  Bytes offset = 0;
  Bytes len = 0;
};

struct Nsd {
  std::uint32_t id = 0;
  std::string name;
  storage::BlockDevice* device = nullptr;
  net::NodeId primary{};
  net::NodeId backup{};
  bool has_backup = false;
  /// Failure domain for replica placement: NSDs sharing a site share
  /// fate (one machine room / one cluster of the multi-site DEISA
  /// configuration). Copies of a replicated block are spread across
  /// distinct sites; 0 everywhere = single-domain, no spreading
  /// constraint.
  std::uint32_t site = 0;
};

class NsdServer {
 public:
  NsdServer(sim::Simulator& sim, net::NodeId node, std::string name,
            sim::Time cpu_per_request = 30e-6);

  net::NodeId node() const { return node_; }
  const std::string& name() const { return name_; }

  /// Serve one I/O: request-processing CPU + per-byte cipher cost (0 for
  /// AUTHONLY sessions) + the device transfer.
  void handle(storage::BlockDevice& dev, Bytes offset, Bytes len, bool write,
              double cipher_s_per_byte, storage::IoCallback done);

  /// Vectored serve — one coalesced client request. A single
  /// request-processing CPU charge covers the whole run (that is the
  /// point of coalescing), cipher cost scales with the total bytes, and
  /// each extent becomes one device transfer. Completes once, with the
  /// first error, after every extent finishes.
  void handle_vectored(storage::BlockDevice& dev,
                       std::vector<IoExtent> extents, bool write,
                       double cipher_s_per_byte, storage::IoCallback done);

  std::uint64_t requests_served() const { return requests_; }
  Bytes bytes_served() const { return bytes_; }
  /// The server's CPU — serial, so per-byte cipher work queues.
  sim::SerialResource& cpu() { return cpu_; }

  /// Two-epoch write fencing (DESIGN.md §6). The gate answers "may this
  /// client, presenting this lease epoch under this manager epoch,
  /// write to this inode?"; the cluster wires it to the file-system
  /// manager's membership view. The inode routes the check to the
  /// metadata shard that owns it — the manager epoch is per shard, and
  /// only the owning shard's takeover may gate the write. Three
  /// outcomes:
  ///   admit — both epochs current, write proceeds;
  ///   retry — a manager takeover is rebuilding state; the write is
  ///           refused retryably (pause-and-redrive, not fail);
  ///   fence — the lease or manager epoch is dead: non-retryable stale.
  /// No gate = admit all (standalone NSD tests).
  enum class GateDecision { admit, retry, fence };
  using WriteGate =
      std::function<GateDecision(ClientId, InodeNum ino,
                                 std::uint64_t lease_epoch,
                                 std::uint64_t mgr_epoch)>;
  void set_write_gate(WriteGate gate) { write_gate_ = std::move(gate); }
  /// Consult the gate; counts fenced rejections. Data-path callers must
  /// check this before charging device work for a write.
  GateDecision write_admitted(ClientId client, InodeNum ino,
                              std::uint64_t lease_epoch,
                              std::uint64_t mgr_epoch);
  std::uint64_t fenced_writes() const { return fenced_; }
  /// Writes refused retryably because a takeover was rebuilding state —
  /// the denominator of the overlap window (gated vs admitted during
  /// recovery).
  std::uint64_t gated_retries() const { return gated_retries_; }

  /// Fail-slow injection (fault engine): multiply all request CPU by
  /// `factor`. 1.0 is healthy; the gray-failure literature's fail-slow
  /// NSD is 10-100x. Never zero — requests still complete, just late.
  void set_slow_factor(double factor);
  double slow_factor() const { return slow_factor_; }

 private:
  sim::Simulator& sim_;
  net::NodeId node_;
  std::string name_;
  sim::Time cpu_per_request_;
  double slow_factor_ = 1.0;
  sim::SerialResource cpu_;
  WriteGate write_gate_;
  std::uint64_t requests_ = 0;
  Bytes bytes_ = 0;
  std::uint64_t fenced_ = 0;
  std::uint64_t gated_retries_ = 0;
};

}  // namespace mgfs::gpfs
