// Block allocation maps: one two-level bitmap per NSD plus a striping
// helper.
//
// GPFS stripes successive file blocks round-robin across all NSDs of the
// file system; the allocator keeps a rotor per NSD so sequential
// allocations stay mostly sequential on each disk (which the Disk model
// rewards). Each bitmap carries a summary level — one bit per 64-bit
// bitmap word, set iff that word still has a free block — so finding the
// next free block from the rotor is a couple of word probes instead of a
// scan across an arbitrarily long run of full words (on a nearly-full
// NSD the old linear next-fit walked the whole map per block).
// Invariants (tested): a block is never handed out twice, free returns
// it exactly once, and counters always match the bitmaps.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "gpfs/types.hpp"

namespace mgfs::gpfs {

class AllocationMap {
 public:
  /// `blocks_per_nsd[i]` = capacity of NSD i in file-system blocks.
  explicit AllocationMap(std::vector<std::uint64_t> blocks_per_nsd);

  std::size_t nsd_count() const { return nsds_.size(); }
  std::uint64_t capacity_blocks(std::uint32_t nsd) const;
  std::uint64_t free_blocks(std::uint32_t nsd) const;
  std::uint64_t total_free() const;
  std::uint64_t total_capacity() const;

  /// Allocate one block on a specific NSD (first free from the rotor).
  Result<BlockAddr> allocate_on(std::uint32_t nsd);

  /// Allocate `n` blocks striped round-robin starting at `first_nsd`,
  /// falling back to any NSD with space when the preferred one is full.
  /// All-or-nothing: on no_space nothing is leaked.
  Result<std::vector<BlockAddr>> allocate_striped(std::uint32_t first_nsd,
                                                  std::size_t n);

  Status free_block(BlockAddr addr);
  bool is_allocated(BlockAddr addr) const;

 private:
  struct PerNsd {
    std::vector<std::uint64_t> bitmap;  // 1 bit per block, 1 = in use
    // Summary level: bit w of summary[w / 64] is set iff bitmap[w] has
    // at least one free (and usable) bit. Bits past the capacity of the
    // final bitmap word are pre-marked used, so "free bit" always means
    // an allocatable block.
    std::vector<std::uint64_t> summary;
    std::uint64_t capacity = 0;
    std::uint64_t used = 0;
    std::uint64_t rotor = 0;  // next-fit scan start
  };

  Result<std::uint64_t> take_free_bit(PerNsd& p);

  std::vector<PerNsd> nsds_;
};

}  // namespace mgfs::gpfs
