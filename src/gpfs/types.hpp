// Shared vocabulary types of the MGFS parallel file system.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace mgfs::gpfs {

using InodeNum = std::uint64_t;
inline constexpr InodeNum kRootIno = 1;

/// Who is acting. Identity on the grid is the DN (paper §6: files belong
/// to the person, not to one site's UID for them); uid/gid are the
/// *local* account the DN resolved to through the site's grid-mapfile.
struct Principal {
  std::string dn;          // grid identity, e.g. "/C=US/O=NPACI/CN=alice"
  std::uint32_t uid = 0;   // site-local uid (display/compat only)
  std::uint32_t gid = 0;
  bool is_admin = false;   // site administrator (root-equivalent)
};

/// Where a file-system block lives: which NSD, which block slot on it.
struct BlockAddr {
  std::uint32_t nsd = 0;
  std::uint64_t block = 0;

  friend bool operator==(const BlockAddr&, const BlockAddr&) = default;
};

enum class FileType { regular, directory };

/// Effective access a mount session has to a file system. Local mounts
/// are read_write; imported mounts are capped by the exporting cluster's
/// mmauth grant (the GPFS 2.3 PTF 2 per-filesystem control of §6.2).
enum class AccessMode { none, read_only, read_write };

/// Permission classes: owner (DN match) and other. Two three-bit groups,
/// owner high: 0644-style constants use the familiar octal spelling.
struct Mode {
  // bits: owner r=040 w=020 x=010, other r=04 w=02 x=01
  std::uint16_t bits = 064;  // rw-r--

  bool owner_can_read() const { return bits & 040; }
  bool owner_can_write() const { return bits & 020; }
  bool other_can_read() const { return bits & 04; }
  bool other_can_write() const { return bits & 02; }

  friend bool operator==(const Mode&, const Mode&) = default;
};

struct FsConfig {
  std::string name = "gpfs0";   // device name, e.g. "gpfs-wan"
  Bytes block_size = 1 * MiB;   // striping unit across NSDs
  /// Disk-lease membership (DESIGN.md §6). Renewal keeps a mounted
  /// client's lease valid for `lease_duration` seconds; a node whose
  /// lease lapsed may be expelled once another `lease_recovery_wait`
  /// passes without a renewal. Defaults are deliberately generous so
  /// short simulations never expel an idle-but-healthy client.
  double lease_duration = 60.0;
  double lease_recovery_wait = 30.0;
};

/// Flags for Client::open.
struct OpenFlags {
  bool read = true;
  bool write = false;
  bool create = false;
  bool truncate = false;

  static OpenFlags ro() { return {true, false, false, false}; }
  static OpenFlags rw() { return {true, true, false, false}; }
  static OpenFlags create_rw() { return {true, true, true, false}; }
};

}  // namespace mgfs::gpfs
