// Shared vocabulary types of the MGFS parallel file system.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace mgfs::gpfs {

using InodeNum = std::uint64_t;
inline constexpr InodeNum kRootIno = 1;

/// Who is acting. Identity on the grid is the DN (paper §6: files belong
/// to the person, not to one site's UID for them); uid/gid are the
/// *local* account the DN resolved to through the site's grid-mapfile.
struct Principal {
  std::string dn;          // grid identity, e.g. "/C=US/O=NPACI/CN=alice"
  std::uint32_t uid = 0;   // site-local uid (display/compat only)
  std::uint32_t gid = 0;
  bool is_admin = false;   // site administrator (root-equivalent)
};

/// Where a file-system block lives: which NSD, which block slot on it.
struct BlockAddr {
  std::uint32_t nsd = 0;
  std::uint64_t block = 0;

  friend bool operator==(const BlockAddr&, const BlockAddr&) = default;
};

/// Replication ceiling. GPFS caps metadata/data replicas at 2 in the
/// 2.3 era and 3 later; 3 copies already covers "home SAN + two grid
/// sites", so the placement array is fixed-size rather than heap-backed.
inline constexpr std::uint32_t kMaxReplicas = 3;

/// All copies of one logical file block. `addr[0]` is the primary (the
/// striping-rule placement); further copies live on NSDs in *different*
/// failure domains (Nsd::site — a cluster/site in the DEISA multi-site
/// configuration). Bit i of `divergent` set means copy i missed a
/// committed write (its NSD was unreachable when the writer propagated)
/// and must not serve reads until reconciled.
struct BlockPlacement {
  std::uint8_t copies = 0;
  std::uint8_t divergent = 0;  // bitmask over addr[0..copies)
  std::array<BlockAddr, kMaxReplicas> addr{};

  void add(BlockAddr a) {
    addr[copies] = a;
    ++copies;
  }
  bool is_divergent(std::uint8_t i) const {
    return (divergent & (std::uint8_t{1} << i)) != 0;
  }
  std::uint8_t clean_copies() const {
    std::uint8_t n = 0;
    for (std::uint8_t i = 0; i < copies; ++i) {
      if (!is_divergent(i)) ++n;
    }
    return n;
  }
  static BlockPlacement single(BlockAddr a) {
    BlockPlacement p;
    p.add(a);
    return p;
  }

  friend bool operator==(const BlockPlacement&, const BlockPlacement&) =
      default;
};

enum class FileType { regular, directory };

/// Effective access a mount session has to a file system. Local mounts
/// are read_write; imported mounts are capped by the exporting cluster's
/// mmauth grant (the GPFS 2.3 PTF 2 per-filesystem control of §6.2).
enum class AccessMode { none, read_only, read_write };

/// Permission classes: owner (DN match) and other. Two three-bit groups,
/// owner high: 0644-style constants use the familiar octal spelling.
struct Mode {
  // bits: owner r=040 w=020 x=010, other r=04 w=02 x=01
  std::uint16_t bits = 064;  // rw-r--

  bool owner_can_read() const { return bits & 040; }
  bool owner_can_write() const { return bits & 020; }
  bool other_can_read() const { return bits & 04; }
  bool other_can_write() const { return bits & 02; }

  friend bool operator==(const Mode&, const Mode&) = default;
};

struct FsConfig {
  std::string name = "gpfs0";   // device name, e.g. "gpfs-wan"
  Bytes block_size = 1 * MiB;   // striping unit across NSDs
  /// Disk-lease membership (DESIGN.md §6). Renewal keeps a mounted
  /// client's lease valid for `lease_duration` seconds; a node whose
  /// lease lapsed may be expelled once another `lease_recovery_wait`
  /// passes without a renewal. Defaults are deliberately generous so
  /// short simulations never expel an idle-but-healthy client.
  double lease_duration = 60.0;
  double lease_recovery_wait = 30.0;
  /// Data copies for newly created files (mmcrfs -r). 1 = unreplicated,
  /// the historic behaviour; per-file overrides via OpenFlags::replicas
  /// or FileSystem::set_replication (mmchattr -r).
  std::uint8_t default_replicas = 1;
  /// Metadata shards (token domains). 1 = the historic single-manager
  /// plane; N > 1 hashes inodes into N domains, each with its own
  /// TokenManager, journal slice, manager node and epoch. Shard 0 is
  /// the lease home: disk leases stay global (one heartbeat covers all
  /// shards) and are rebuilt only when shard 0 fails over.
  std::uint32_t meta_shards = 1;
  /// CPU seconds a shard's manager spends per metadata op (token
  /// grants, opens, allocations...). 0 disables the charge entirely —
  /// the historic behaviour, byte-identical event order. Non-zero
  /// serializes ops through the owning shard's CPU, which is what the
  /// shard_sweep bench measures scaling against.
  double meta_cpu_per_op = 0.0;
  /// Metanode auto-delegation: after this many consecutive token
  /// acquires on one inode by a single client, migrate the inode's
  /// token/journal authority to the shard whose manager is nearest
  /// that client (GPFS metanode election). 0 = off.
  std::uint32_t auto_delegate_ops = 0;
};

/// Flags for Client::open.
struct OpenFlags {
  bool read = true;
  bool write = false;
  bool create = false;
  bool truncate = false;
  /// Data copies for the file if this open creates it (mmchattr -r at
  /// birth). 0 = inherit FsConfig::default_replicas; ignored when the
  /// file already exists.
  std::uint8_t replicas = 0;

  static OpenFlags ro() { return {true, false, false, false}; }
  static OpenFlags rw() { return {true, true, false, false}; }
  static OpenFlags create_rw() { return {true, true, true, false}; }
  static OpenFlags create_replicated(std::uint8_t copies) {
    return {true, true, true, false, copies};
  }
};

}  // namespace mgfs::gpfs
