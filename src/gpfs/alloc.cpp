#include "gpfs/alloc.hpp"

namespace mgfs::gpfs {

AllocationMap::AllocationMap(std::vector<std::uint64_t> blocks_per_nsd) {
  MGFS_ASSERT(!blocks_per_nsd.empty(), "allocation map with no NSDs");
  nsds_.reserve(blocks_per_nsd.size());
  for (std::uint64_t cap : blocks_per_nsd) {
    PerNsd p;
    p.capacity = cap;
    const std::uint64_t words = (cap + 63) / 64;
    p.bitmap.assign(words, 0);
    // Bits of the final word past capacity can never be allocated: mark
    // them used up front so every clear bit in the map is a real block
    // and the scan never has to special-case the tail.
    if (cap % 64 != 0) {
      p.bitmap[words - 1] = ~0ULL << (cap % 64);
    }
    // Every word starts with at least one free bit (words only exist to
    // cover capacity), so all summary bits covering real words are set.
    p.summary.assign((words + 63) / 64, ~0ULL);
    if (!p.summary.empty() && words % 64 != 0) {
      p.summary.back() = (1ULL << (words % 64)) - 1;
    }
    nsds_.push_back(std::move(p));
  }
}

std::uint64_t AllocationMap::capacity_blocks(std::uint32_t nsd) const {
  MGFS_ASSERT(nsd < nsds_.size(), "bad nsd index");
  return nsds_[nsd].capacity;
}

std::uint64_t AllocationMap::free_blocks(std::uint32_t nsd) const {
  MGFS_ASSERT(nsd < nsds_.size(), "bad nsd index");
  return nsds_[nsd].capacity - nsds_[nsd].used;
}

std::uint64_t AllocationMap::total_free() const {
  std::uint64_t t = 0;
  for (const auto& p : nsds_) t += p.capacity - p.used;
  return t;
}

std::uint64_t AllocationMap::total_capacity() const {
  std::uint64_t t = 0;
  for (const auto& p : nsds_) t += p.capacity;
  return t;
}

Result<std::uint64_t> AllocationMap::take_free_bit(PerNsd& p) {
  if (p.used == p.capacity) return err(Errc::no_space, "nsd full");
  // Two probes instead of a scan: the summary narrows to the first
  // bitmap word at/after the rotor with a free bit (cyclically), then
  // ctz picks the lowest free bit of that word. The resulting block
  // sequence is exactly what the old per-word next-fit scan produced —
  // same word granularity, same lowest-bit-first order — so seeded
  // runs allocate identically.
  const std::uint64_t words = p.bitmap.size();
  const std::uint64_t groups = p.summary.size();
  const std::uint64_t start_word = p.rotor / 64;
  const std::uint64_t start_group = start_word / 64;
  std::uint64_t word = words;
  for (std::uint64_t scanned = 0; scanned <= groups; ++scanned) {
    const std::uint64_t g = (start_group + scanned) % groups;
    std::uint64_t avail = p.summary[g];
    if (scanned == 0) avail &= ~0ULL << (start_word % 64);
    if (avail != 0) {
      word = g * 64 + static_cast<std::uint64_t>(__builtin_ctzll(avail));
      break;
    }
  }
  MGFS_ASSERT(word < words, "summary lost a free word");
  const std::uint64_t free_mask = ~p.bitmap[word];
  MGFS_ASSERT(free_mask != 0, "summary bit set on a full word");
  const int bit = __builtin_ctzll(free_mask);
  const std::uint64_t block = word * 64 + static_cast<std::uint64_t>(bit);
  MGFS_ASSERT(block < p.capacity, "tail bit escaped pre-marking");
  p.bitmap[word] |= (1ULL << bit);
  if (p.bitmap[word] == ~0ULL) {
    p.summary[word / 64] &= ~(1ULL << (word % 64));
  }
  ++p.used;
  p.rotor = block + 1 < p.capacity ? block + 1 : 0;
  return block;
}

Result<BlockAddr> AllocationMap::allocate_on(std::uint32_t nsd) {
  MGFS_ASSERT(nsd < nsds_.size(), "bad nsd index");
  auto b = take_free_bit(nsds_[nsd]);
  if (!b.ok()) return b.error();
  return BlockAddr{nsd, *b};
}

Result<std::vector<BlockAddr>> AllocationMap::allocate_striped(
    std::uint32_t first_nsd, std::size_t n) {
  MGFS_ASSERT(first_nsd < nsds_.size(), "bad nsd index");
  if (total_free() < n) {
    return err(Errc::no_space, "file system full");
  }
  std::vector<BlockAddr> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto preferred =
        static_cast<std::uint32_t>((first_nsd + i) % nsds_.size());
    auto b = allocate_on(preferred);
    if (!b.ok()) {
      // Preferred NSD full: fall back to the next NSD with space.
      for (std::size_t k = 1; k < nsds_.size() && !b.ok(); ++k) {
        const auto alt =
            static_cast<std::uint32_t>((preferred + k) % nsds_.size());
        b = allocate_on(alt);
      }
    }
    if (!b.ok()) {
      for (const BlockAddr& a : out) {
        (void)free_block(a);  // roll back: all-or-nothing
      }
      return err(Errc::no_space, "file system full");
    }
    out.push_back(*b);
  }
  return out;
}

Status AllocationMap::free_block(BlockAddr addr) {
  if (addr.nsd >= nsds_.size()) {
    return Status(Errc::invalid_argument, "bad nsd");
  }
  PerNsd& p = nsds_[addr.nsd];
  if (addr.block >= p.capacity) {
    return Status(Errc::invalid_argument, "block beyond nsd capacity");
  }
  const std::uint64_t word = addr.block / 64;
  const std::uint64_t mask = 1ULL << (addr.block % 64);
  if (!(p.bitmap[word] & mask)) {
    return Status(Errc::invalid_argument, "double free");
  }
  p.bitmap[word] &= ~mask;
  p.summary[word / 64] |= 1ULL << (word % 64);
  --p.used;
  return Status{};
}

bool AllocationMap::is_allocated(BlockAddr addr) const {
  if (addr.nsd >= nsds_.size()) return false;
  const PerNsd& p = nsds_[addr.nsd];
  if (addr.block >= p.capacity) return false;
  return (p.bitmap[addr.block / 64] >> (addr.block % 64)) & 1;
}

}  // namespace mgfs::gpfs
