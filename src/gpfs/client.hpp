// Client: a node's view of one mounted MGFS file system.
//
// The client implements the performance-critical half of GPFS:
//   * a pagepool block cache with LRU eviction
//   * sequential-read detection and block readahead
//   * buffered writes with write-behind (dirty cap stalls writers)
//   * a client-side token cache — byte ranges this node may cache —
//     kept coherent by the manager's revoke protocol
//   * a client-side block-address cache fetched in batches
//   * NSD server failover: primary, then backup, per I/O
//   * fault tolerance: per-RPC deadlines, bounded retry with backoff,
//     and a per-NSD-server circuit breaker (health tracking) so I/O
//     prefers the healthy replica instead of re-probing a dead or
//     blackholed primary on every block
//
// All operations are asynchronous (completion callbacks), since every
// miss is real simulated network + disk traffic. One Client == one
// (node, file system, mount session) triple; the same node may hold
// several Clients for several file systems.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/retry.hpp"
#include "gpfs/filesystem.hpp"
#include "gpfs/pagepool.hpp"
#include "gpfs/rpc.hpp"
#include "sim/serial_resource.hpp"

namespace mgfs::gpfs {

struct ClientConfig {
  Bytes pagepool = 256 * MiB;
  int readahead_blocks = 8;
  Bytes max_dirty = 64 * MiB;        // write-behind ceiling
  std::size_t flush_parallel = 16;   // concurrent write-behind I/Os
  std::size_t map_chunk = 64;        // block-map entries per metadata RPC
  Bytes meta_payload = 256;          // metadata request/response payload

  // --- fault model (DESIGN.md "Failure model & recovery semantics") ---
  sim::Time rpc_deadline = 30.0;     // per-RPC round-trip bound (0 = none)
  RetryPolicy retry{};               // metadata + NSD I/O re-issue policy
  int breaker_threshold = 3;         // consecutive failures to open
  sim::Time breaker_probe = 1.0;     // half-open probe spacing while open
  sim::Time flush_retry_delay = 0.05;  // write-behind requeue after failure
};

using Fh = int;  // file handle

class Client {
 public:
  /// How the client finds the NsdServer object logically running on a
  /// given node (installed by the cluster glue).
  using ServerLookup = std::function<NsdServer*(net::NodeId)>;

  /// `rng` feeds retry jitter; pass a per-client split of the cluster
  /// stream so runs stay seed-deterministic.
  Client(Rpc& rpc, net::NodeId node, ClientId id, ClientConfig cfg = {},
         Rng rng = Rng(0x6d6766735f636c69ULL));

  /// Bind to a file system. `access` is the mount session's ceiling
  /// (read_write locally; per mmauth grant for a remote mount) and
  /// `cipher_s_per_byte` the per-byte cost of cipherList=encrypt (0 for
  /// AUTHONLY). Registration with the manager is done by cluster glue.
  void bind(FileSystem* fs, AccessMode access, double cipher_s_per_byte,
            ServerLookup servers);
  bool mounted() const { return fs_ != nullptr; }
  void unbind();

  net::NodeId node() const { return node_; }
  ClientId id() const { return id_; }
  sim::Simulator& simulator() const { return rpc_.pool().network().simulator(); }
  PagePool& pool() { return pool_; }
  const ClientConfig& config() const { return cfg_; }
  AccessMode access() const { return access_; }

  // --- file operations --------------------------------------------------
  void open(const std::string& path, const Principal& who, OpenFlags flags,
            std::function<void(Result<Fh>)> done);
  /// Completes with the byte count actually read (0 at EOF).
  void read(Fh fh, Bytes offset, Bytes len,
            std::function<void(Result<Bytes>)> done);
  /// Buffered write; completes when the data is accepted into the page
  /// pool (possibly after stalling on the dirty cap).
  void write(Fh fh, Bytes offset, Bytes len,
             std::function<void(Result<Bytes>)> done);
  void fsync(Fh fh, std::function<void(Status)> done);
  void close(Fh fh, std::function<void(Status)> done);
  /// Flush every dirty page of every file (unmount preparation).
  void flush_all(sim::Callback done);
  /// Re-fetch the file's current size from the manager (a reader polling
  /// a file that another node is appending to — the Fig. 5 pattern).
  void refresh_size(Fh fh, std::function<void(Result<Bytes>)> done);
  Bytes known_size(Fh fh) const;

  // --- namespace operations ---------------------------------------------
  void stat(const std::string& path,
            std::function<void(Result<StatInfo>)> done);
  void mkdir(const std::string& path, const Principal& who, Mode mode,
             std::function<void(Status)> done);
  void readdir(const std::string& path, const Principal& who,
               std::function<void(Result<std::vector<std::string>>)> done);
  void unlink(const std::string& path, const Principal& who,
              std::function<void(Status)> done);
  void rename(const std::string& from, const std::string& to,
              const Principal& who, std::function<void(Status)> done);

  // --- coherence (called by cluster glue on manager's behalf) -----------
  /// Flush dirty pages overlapping `range`, drop cached pages and token.
  void handle_revoke(InodeNum ino, TokenRange range, sim::Callback done);

  // --- stats -------------------------------------------------------------
  Bytes bytes_read_remote() const { return bytes_read_remote_; }
  Bytes bytes_written_remote() const { return bytes_written_remote_; }
  std::uint64_t nsd_failovers() const { return failovers_; }
  std::uint64_t rpc_retries() const { return rpc_retries_; }
  std::uint64_t rpc_timeouts() const { return rpc_timeouts_; }
  std::uint64_t breaker_opens() const { return breaker_opens_; }
  std::uint64_t breaker_skips() const { return breaker_skips_; }
  std::uint64_t breaker_probes() const { return breaker_probes_; }
  /// Is the breaker for NSD-server `node` currently open?
  bool breaker_open(net::NodeId node) const;
  /// mmpmon-style per-client I/O counter report (the GPFS monitoring
  /// interface operators scripted against).
  std::string mmpmon() const;

 private:
  struct OpenFile {
    InodeNum ino = 0;
    Principal who;
    OpenFlags flags;
    Bytes size = 0;  // client's view; refresh_size() re-fetches
    std::uint64_t next_seq_block = ~0ULL;  // readahead detector
  };

  struct HeldToken {
    LockMode mode;
    TokenRange range;
  };

  // token cache helpers
  bool token_covers(InodeNum ino, TokenRange r, LockMode mode) const;
  void token_record(InodeNum ino, TokenRange r, LockMode mode);
  void token_trim(InodeNum ino, TokenRange r);
  void ensure_token(InodeNum ino, TokenRange r, LockMode mode,
                    std::function<void(Status)> done);

  // block map cache helpers
  std::optional<BlockAddr>* map_entry(InodeNum ino, std::uint64_t bi);
  void ensure_map(InodeNum ino, std::uint64_t first, std::uint64_t count,
                  std::function<void(Status)> done);
  void install_chunk(InodeNum ino, const BlockMapChunk& chunk);

  // metadata path: manager RPC with deadline + bounded backoff retry
  template <typename R>
  void meta_call(Bytes req_payload, Rpc::ServerFn<R> server,
                 std::function<void(Result<R>)> done, int attempt = 0);

  // data path
  void ensure_block_present(InodeNum ino, std::uint64_t bi,
                            std::function<void(Status)> done);
  void nsd_io(BlockAddr addr, bool write, std::function<void(Status)> done);
  void nsd_io_round(BlockAddr addr, bool write, int attempt,
                    std::function<void(Status)> done);
  void nsd_io_attempt(BlockAddr addr, bool write,
                      std::vector<net::NodeId> targets, std::size_t ti,
                      int attempt, std::function<void(Status)> done);

  // NSD server health (circuit breaker)
  struct ServerHealth {
    int fails = 0;             // consecutive transient failures
    bool open = false;         // breaker state
    sim::Time next_probe = 0;  // earliest half-open trial while open
  };
  /// May this server be tried now? (closed, or open with a probe due.)
  bool admit_server(net::NodeId n) const;
  /// Called when a request is actually issued to `n`: if the breaker is
  /// open this is the half-open trial, so consume the probe window.
  void consume_probe(net::NodeId n);
  void note_server_ok(net::NodeId n);
  void note_server_fail(net::NodeId n);

  // write-behind
  void pump_flush();
  void flush_inode(InodeNum ino, std::optional<TokenRange> range,
                   sim::Callback done);
  void unstall_writers();

  OpenFile* file(Fh fh);
  Bytes block_size() const { return fs_->block_size(); }

  Rpc& rpc_;
  net::NodeId node_;
  ClientId id_;
  ClientConfig cfg_;
  Rng rng_;                  // retry jitter (deterministic per client)
  PagePool pool_;
  sim::SerialResource cpu_;  // client-side per-byte cipher work

  FileSystem* fs_ = nullptr;
  AccessMode access_ = AccessMode::none;
  double cipher_ = 0.0;
  ServerLookup servers_;

  Fh next_fh_ = 3;
  std::map<Fh, OpenFile> open_;
  std::unordered_map<InodeNum, std::vector<HeldToken>> held_;
  std::unordered_map<InodeNum,
                     std::unordered_map<std::uint64_t,
                                        std::optional<BlockAddr>>>
      block_map_;

  // in-flight read fills: waiters per page
  std::unordered_map<PageKey, std::vector<std::function<void(Status)>>,
                     PageKeyHash>
      fill_waiters_;

  // write-behind state
  std::deque<PageKey> dirty_fifo_;
  std::unordered_map<PageKey, BlockAddr, PageKeyHash> dirty_addr_;
  std::size_t flights_ = 0;
  std::vector<sim::Callback> stalled_writers_;
  // fsync/revoke waiters: (ino, callback fired when no dirty+inflight)
  std::vector<std::pair<InodeNum, sim::Callback>> flush_waiters_;
  std::unordered_map<InodeNum, std::size_t> inflight_per_ino_;

  // NSD server health, keyed by serving node id
  std::unordered_map<std::uint32_t, ServerHealth> nsd_health_;

  Bytes bytes_read_remote_ = 0;
  Bytes bytes_written_remote_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t rpc_retries_ = 0;
  std::uint64_t rpc_timeouts_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t breaker_skips_ = 0;
  std::uint64_t breaker_probes_ = 0;
};

}  // namespace mgfs::gpfs
