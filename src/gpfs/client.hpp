// Client: a node's view of one mounted MGFS file system.
//
// The client implements the performance-critical half of GPFS:
//   * a pagepool block cache with LRU eviction
//   * sequential-read detection and block readahead
//   * buffered writes with write-behind (dirty cap stalls writers)
//   * a client-side token cache — byte ranges this node may cache —
//     kept coherent by the manager's revoke protocol
//   * a client-side block-address cache fetched in batches
//   * NSD server failover: primary, then backup, per I/O
//   * fault tolerance: per-RPC deadlines, bounded retry with backoff,
//     and a per-NSD-server circuit breaker (health tracking) so I/O
//     prefers the healthy replica instead of re-probing a dead or
//     blackholed primary on every block
//
// All operations are asynchronous (completion callbacks), since every
// miss is real simulated network + disk traffic. One Client == one
// (node, file system, mount session) triple; the same node may hold
// several Clients for several file systems.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/histogram.hpp"
#include "common/retry.hpp"
#include "gpfs/filesystem.hpp"
#include "gpfs/pagepool.hpp"
#include "gpfs/readahead.hpp"
#include "gpfs/rpc.hpp"
#include "sim/serial_resource.hpp"

namespace mgfs::gpfs {

struct ClientConfig {
  Bytes pagepool = 256 * MiB;
  int readahead_blocks = 32;         // adaptive readahead cap (blocks)
  int readahead_min = 4;             // ramp start after first sequential hit
  Bytes max_inflight_fill = 48 * MiB;  // speculative fill bytes in flight
  std::size_t coalesce_blocks = 8;   // max blocks per coalesced NSD request
  std::size_t write_batch_blocks = 64;  // token/alloc batch on write streaks
  Bytes max_dirty = 64 * MiB;        // write-behind ceiling
  std::size_t flush_parallel = 32;   // concurrent write-behind I/Os
  std::size_t map_chunk = 64;        // block-map entries per metadata RPC
  Bytes meta_payload = 256;          // metadata request/response payload

  // --- fault model (DESIGN.md "Failure model & recovery semantics") ---
  sim::Time rpc_deadline = 30.0;     // per-RPC round-trip bound (0 = none)
  RetryPolicy retry{};               // metadata + NSD I/O re-issue policy
  int breaker_threshold = 3;         // consecutive failures to open
  sim::Time breaker_probe = 1.0;     // half-open probe spacing while open
  sim::Time flush_retry_delay = 0.05;  // write-behind requeue after failure
  /// Fixed metadata-retry spacing while the manager gate reports
  /// `recovering`: the full seeded-backoff schedule can sleep through a
  /// short takeover, so redrives probe at this cadence until the gate
  /// clears, then normal backoff resumes.
  sim::Time recovery_probe_interval = 0.05;
};

using Fh = int;  // file handle

/// A client's answer to the manager-takeover rebuild query — one
/// batched reassert_all reply carrying its full membership state: the
/// lease epoch it believes is current, every token it holds, and a
/// dirty-journal summary (write-behind bytes still unflushed and the
/// inodes they belong to). The successor reconstructs its volatile
/// token/lease tables from these with O(clients) RPCs, not O(grants);
/// the dirty summary sizes the redrive the overlap window must absorb.
struct ManagerAssertReply {
  std::uint64_t lease_epoch = 0;
  std::vector<TokenAssertion> tokens;
  Bytes dirty_bytes = 0;                // unflushed write-behind payload
  std::vector<InodeNum> dirty_inodes;   // distinct inodes owning it, sorted
};

class Client {
 public:
  /// How the client finds the NsdServer object logically running on a
  /// given node (installed by the cluster glue).
  using ServerLookup = std::function<NsdServer*(net::NodeId)>;

  /// `rng` feeds retry jitter; pass a per-client split of the cluster
  /// stream so runs stay seed-deterministic.
  Client(Rpc& rpc, net::NodeId node, ClientId id, ClientConfig cfg = {},
         Rng rng = Rng(0x6d6766735f636c69ULL));

  /// Bind to a file system. `access` is the mount session's ceiling
  /// (read_write locally; per mmauth grant for a remote mount) and
  /// `cipher_s_per_byte` the per-byte cost of cipherList=encrypt (0 for
  /// AUTHONLY). Registration with the manager is done by cluster glue.
  void bind(FileSystem* fs, AccessMode access, double cipher_s_per_byte,
            ServerLookup servers);
  bool mounted() const { return fs_ != nullptr; }
  void unbind();

  net::NodeId node() const { return node_; }
  ClientId id() const { return id_; }
  sim::Simulator& simulator() const { return rpc_.pool().network().simulator(); }
  PagePool& pool() { return pool_; }
  const ClientConfig& config() const { return cfg_; }
  AccessMode access() const { return access_; }

  // --- file operations --------------------------------------------------
  void open(const std::string& path, const Principal& who, OpenFlags flags,
            std::function<void(Result<Fh>)> done);
  /// Completes with the byte count actually read (0 at EOF).
  void read(Fh fh, Bytes offset, Bytes len,
            std::function<void(Result<Bytes>)> done);
  /// Buffered write; completes when the data is accepted into the page
  /// pool (possibly after stalling on the dirty cap).
  void write(Fh fh, Bytes offset, Bytes len,
             std::function<void(Result<Bytes>)> done);
  void fsync(Fh fh, std::function<void(Status)> done);
  void close(Fh fh, std::function<void(Status)> done);
  /// Flush every dirty page of every file (unmount preparation).
  void flush_all(sim::Callback done);
  /// Re-fetch the file's current size from the manager (a reader polling
  /// a file that another node is appending to — the Fig. 5 pattern).
  void refresh_size(Fh fh, std::function<void(Result<Bytes>)> done);
  Bytes known_size(Fh fh) const;

  // --- namespace operations ---------------------------------------------
  void stat(const std::string& path,
            std::function<void(Result<StatInfo>)> done);
  void mkdir(const std::string& path, const Principal& who, Mode mode,
             std::function<void(Status)> done);
  void readdir(const std::string& path, const Principal& who,
               std::function<void(Result<std::vector<std::string>>)> done);
  void unlink(const std::string& path, const Principal& who,
              std::function<void(Status)> done);
  void rename(const std::string& from, const std::string& to,
              const Principal& who, std::function<void(Status)> done);

  // --- coherence (called by cluster glue on manager's behalf) -----------
  /// Flush dirty pages overlapping `range`, drop cached pages and token.
  void handle_revoke(InodeNum ino, TokenRange range, sim::Callback done);
  /// Epoch-checked variant: a revoke stamped with a manager epoch older
  /// than the one this client has adopted is refused (returns false,
  /// `done` never runs) — a deposed manager cannot strip tokens the
  /// successor re-granted. Current-or-newer epochs are adopted and the
  /// revoke proceeds.
  bool handle_revoke(InodeNum ino, TokenRange range, std::uint64_t mgr_epoch,
                     sim::Callback done);

  // --- manager failover (cluster glue + takeover rebuild) ----------------
  /// Takeover rebuild query from a successor manager of `shard` at
  /// `mgr_node` under `mgr_epoch`: adopt the new manager view for that
  /// shard and report our lease epoch plus every held token *of that
  /// shard's inodes*, sorted for determinism. Holdings in other shards
  /// are untouched — their managers did not change. Errc::unavailable
  /// if not mounted.
  Result<ManagerAssertReply> assert_tokens(net::NodeId mgr_node,
                                           std::uint64_t mgr_epoch,
                                           std::uint32_t shard = 0);
  /// An unsolicited token grant from a node claiming to be the manager
  /// under `mgr_epoch`. Refused (returns false) when the epoch is older
  /// than the adopted one — the deposed-manager probe; otherwise the
  /// grant is cached like any widened grant.
  bool deliver_manager_grant(InodeNum ino, TokenRange range, LockMode mode,
                             std::uint64_t mgr_epoch);
  /// Invoked with the target shard whenever a manager RPC fails
  /// retryably — the cluster wires this to its manager-suspicion
  /// machinery so repeated unreachability triggers a takeover of that
  /// shard.
  void set_manager_watch(std::function<void(std::uint32_t)> fn) {
    manager_watch_ = std::move(fn);
  }
  std::uint64_t mgr_takeovers() const { return mgr_takeovers_; }
  std::uint64_t mgr_reroutes() const { return mgr_reroutes_; }
  std::uint64_t stale_mgr_rejects() const { return stale_mgr_rejects_; }

  // --- disk lease (cluster glue wires these at mount) --------------------
  /// Rejoin the cluster after a lease lapse: one manager RPC that
  /// re-registers this client and completes with the fresh epoch.
  using RejoinFn =
      std::function<void(std::function<void(Result<std::uint64_t>)>)>;
  void set_lease(std::uint64_t epoch, double duration);
  void set_rejoin(RejoinFn fn) { rejoin_ = std::move(fn); }
  std::uint64_t lease_epoch() const { return lease_epoch_; }
  /// The node hosting this client rebooted (fault injector / cluster
  /// glue): all volatile state — caches, tokens, dirty pages, breaker
  /// history — is gone. Open handles survive as objects (callers may
  /// still hold them) but every cached byte is dropped.
  void crash_reset();

  // --- stats -------------------------------------------------------------
  Bytes bytes_read_remote() const { return bytes_read_remote_; }
  Bytes bytes_written_remote() const { return bytes_written_remote_; }
  std::uint64_t nsd_failovers() const { return failovers_; }
  /// Reads served by a non-primary replica copy.
  std::uint64_t replica_reads() const { return replica_reads_; }
  /// Read runs (or flush anchors) redirected to another replica copy.
  std::uint64_t replica_failovers() const { return replica_failovers_; }
  std::uint64_t rpc_retries() const { return rpc_retries_; }
  std::uint64_t rpc_timeouts() const { return rpc_timeouts_; }
  std::uint64_t breaker_opens() const { return breaker_opens_; }
  std::uint64_t breaker_skips() const { return breaker_skips_; }
  std::uint64_t breaker_probes() const { return breaker_probes_; }
  std::uint64_t readahead_issued() const { return ra_issued_; }
  std::uint64_t blocks_coalesced() const { return coal_blocks_; }
  std::uint64_t coalesced_requests() const { return coal_requests_; }
  std::uint64_t coalesced_splits() const { return coal_splits_; }
  std::uint64_t meta_rpcs_saved() const { return meta_rpcs_saved_; }
  std::uint64_t lease_renewals() const { return lease_renewals_; }
  std::uint64_t lease_lapses() const { return lease_lapses_; }
  std::uint64_t fenced_writes() const { return fenced_writes_; }
  /// Metadata retries issued at the fast recovery-probe cadence.
  std::uint64_t recovery_probes() const { return recovery_probes_; }
  /// Latency of metadata ops that overlapped a takeover rebuild.
  const Histogram& recovery_op_latency() const { return recovery_op_hist_; }
  /// Is the breaker for NSD-server `node` currently open?
  bool breaker_open(net::NodeId node) const;
  /// mmpmon-style per-client I/O counter report (the GPFS monitoring
  /// interface operators scripted against).
  std::string mmpmon() const;

 private:
  struct OpenFile {
    InodeNum ino = 0;
    Principal who;
    OpenFlags flags;
    Bytes size = 0;  // client's view; refresh_size() re-fetches
    ReadaheadRamp ra;  // sequential-read prefetch ramp
    ReadaheadRamp wb;  // sequential-write batch ramp (token/alloc window)
  };

  struct HeldToken {
    LockMode mode;
    TokenRange range;
    bool widened = false;  // manager granted more than we asked for
  };

  // token cache helpers
  bool token_covers(InodeNum ino, TokenRange r, LockMode mode) const;
  void token_record(InodeNum ino, TokenRange r, LockMode mode, bool widened);
  void token_trim(InodeNum ino, TokenRange r);
  /// Acquire `required` (a cache hit short-circuits); `desired` ⊇
  /// `required` is the batch window handed to the manager for clipping.
  void ensure_token(InodeNum ino, TokenRange required, TokenRange desired,
                    LockMode mode, std::function<void(Status)> done);

  // block map cache helpers. Entries carry the full replica placement
  // (single-copy files are a one-copy placement), so the read path can
  // pick the nearest live copy and fail over across copies.
  std::optional<BlockPlacement>* map_entry(InodeNum ino, std::uint64_t bi);
  void ensure_map(InodeNum ino, std::uint64_t first, std::uint64_t count,
                  std::function<void(Status)> done);
  void install_chunk(InodeNum ino, const BlockMapChunk& chunk);
  /// Best copy to read: lowest-RTT copy whose serving nodes are not all
  /// circuit-broken, excluding divergent copies and those in `tried`.
  /// Returns kMaxReplicas when every copy is tried or divergent.
  std::uint8_t pick_copy(const BlockPlacement& p, std::uint8_t tried) const;

  // metadata path: manager RPC with deadline + bounded backoff retry.
  // `shard` routes the call to the believed manager of that token
  // domain and serializes the server work behind that shard's manager
  // CPU. `started_at`/`saw_recovery` thread first-issue time and
  // whether the op ever saw the recovering gate through the retry
  // chain, feeding the recovery-op latency histogram.
  template <typename R>
  void meta_call(std::uint32_t shard, Bytes req_payload,
                 Rpc::ServerFn<R> server,
                 std::function<void(Result<R>)> done, int attempt = 0,
                 double started_at = -1.0, bool saw_recovery = false);

  // data path. Fills and flushes travel as NsdRuns — coalesced wire
  // requests. RunDone is a *shared* completion: it fires once per
  // terminal (unsplit) sub-run, covering every item exactly once.
  using RunDone = std::function<void(const NsdRun&, const Status&)>;
  void ensure_block_present(InodeNum ino, std::uint64_t bi,
                            std::function<void(Status)> done);
  void issue_fills(std::vector<BlockFetch> fetch);
  void finish_fill(const PageKey& key, const Status& st, bool speculative);
  /// A read run failed terminally: re-issue every item that still has an
  /// untried, non-divergent replica copy against that copy (counting one
  /// replica failover), and fail the rest. Returns false when nothing
  /// could be redirected (single-copy file or all copies tried).
  bool redirect_failed_fills(const NsdRun& r, const Status& st);
  /// Speculative fill of `count` blocks starting at `b0` — the strided
  /// detector's prediction of the next sequential run. Acquires its own
  /// token/map coverage and rides the normal fill path.
  void prefetch_strided(InodeNum ino, std::uint64_t b0, std::uint64_t count);
  void nsd_io_run(NsdRun run, bool write, int attempt, RunDone done);
  void nsd_run_attempt(NsdRun run, bool write,
                       std::vector<net::NodeId> targets, std::size_t ti,
                       int attempt, RunDone done);
  void split_run(NsdRun run, bool write, int attempt, RunDone done);

  // NSD server health (circuit breaker)
  struct ServerHealth {
    int fails = 0;             // consecutive transient failures
    bool open = false;         // breaker state
    sim::Time next_probe = 0;  // earliest half-open trial while open
  };
  /// May this server be tried now? (closed, or open with a probe due.)
  bool admit_server(net::NodeId n) const;
  /// Called when a request is actually issued to `n`: if the breaker is
  /// open this is the half-open trial, so consume the probe window.
  void consume_probe(net::NodeId n);
  void note_server_ok(net::NodeId n);
  void note_server_fail(net::NodeId n);

  // write-behind
  void pump_flush();
  void flush_inode(InodeNum ino, std::optional<TokenRange> range,
                   sim::Callback done);
  void unstall_writers();
  void check_flush_waiters();
  // Write-through replication: the flush anchors on the primary (or the
  // first clean copy when the primary is divergent); once the anchor
  // write lands, the data is propagated to every other clean copy
  // before the page goes clean — fsync therefore covers all copies. A
  // copy that cannot be reached is marked divergent at the manager so
  // readers skip it until reconciliation.
  /// Anchor copy for flushing `p`: primary if clean, else first clean.
  static std::uint8_t flush_anchor(const BlockPlacement& p);
  /// Anchor landed: propagate to the remaining clean copies, then mark
  /// the page clean and release its inflight accounting.
  void finish_block_flush(const PageKey& k, std::uint8_t anchor);
  void complete_block_flush(const PageKey& k);
  void write_replica_copy(const PageKey& k, BlockAddr addr, std::uint8_t copy,
                          sim::Callback done);
  /// Record at the manager (and in local caches) that copy `copy` of the
  /// block missed a committed write.
  void mark_divergent(const PageKey& k, std::uint8_t copy,
                      sim::Callback done);
  void release_inflight(InodeNum ino);

  // disk lease
  /// Piggybacked renewal at read()/write() entry: past half the lease
  /// duration, send one renewal RPC (no periodic timer — the sim drains
  /// its queue between operations).
  void maybe_renew_lease();
  /// The manager told us our lease is gone (stale renewal or fenced
  /// write): drop everything dirty, invalidate caches, rejoin for a
  /// fresh epoch.
  void on_lease_lapsed();
  /// Retry loop for the rejoin RPC (backoff; superseded by incarnation).
  void attempt_rejoin(int attempt);
  void discard_cached_state(bool reset_breakers);

  // manager failover
  /// Adopt (mgr_node, mgr_epoch) as the believed manager view of
  /// `shard`; counts a takeover when the epoch advances. Older epochs
  /// only move the node.
  void adopt_manager_view(std::uint32_t shard, net::NodeId mgr_node,
                          std::uint64_t mgr_epoch);
  /// Before a metadata retry: re-look-up `shard`'s manager node from
  /// the cluster configuration (fs_). Returns the refreshed target and
  /// counts a reroute when it differs from `failed_target`.
  net::NodeId refresh_manager_view(std::uint32_t shard,
                                   net::NodeId failed_target);
  /// (Re-)seed the per-shard manager views from the cluster config
  /// (bind, crash reboot, rejoin).
  void seed_manager_views();

  OpenFile* file(Fh fh);
  Bytes block_size() const { return fs_->block_size(); }

  Rpc& rpc_;
  net::NodeId node_;
  ClientId id_;
  ClientConfig cfg_;
  Rng rng_;                  // retry jitter (deterministic per client)
  PagePool pool_;
  sim::SerialResource cpu_;  // client-side per-byte cipher work

  FileSystem* fs_ = nullptr;
  AccessMode access_ = AccessMode::none;
  double cipher_ = 0.0;
  ServerLookup servers_;

  Fh next_fh_ = 3;
  std::map<Fh, OpenFile> open_;
  std::unordered_map<InodeNum, std::vector<HeldToken>> held_;
  std::unordered_map<InodeNum,
                     std::unordered_map<std::uint64_t,
                                        std::optional<BlockPlacement>>>
      block_map_;

  // in-flight read fills: waiters per page (an entry with no waiters
  // marks a fire-and-forget readahead fill in flight — the dedup point)
  std::unordered_map<PageKey, std::vector<std::function<void(Status)>>,
                     PageKeyHash>
      fill_waiters_;
  Bytes fill_inflight_ = 0;  // speculative fill bytes in flight

  // allocation high-water mark from write-streak batching, per inode:
  // blocks below it were allocated ahead, so a later write skips the
  // allocation RPC entirely
  std::unordered_map<InodeNum, std::uint64_t> alloc_ahead_hi_;

  // write-behind state
  std::deque<PageKey> dirty_fifo_;
  std::unordered_map<PageKey, BlockPlacement, PageKeyHash> dirty_addr_;
  // Consecutive transient anchor-flush failures per page; past a small
  // bound with another clean copy available, the anchor is marked
  // divergent and the flush re-anchors (writes survive a dark primary).
  std::unordered_map<PageKey, int, PageKeyHash> anchor_fails_;
  std::size_t flights_ = 0;
  std::vector<sim::Callback> stalled_writers_;
  // fsync/revoke waiters: (ino, callback fired when no dirty+inflight)
  std::vector<std::pair<InodeNum, sim::Callback>> flush_waiters_;
  std::unordered_map<InodeNum, std::size_t> inflight_per_ino_;

  // NSD server health, keyed by serving node id
  std::unordered_map<std::uint32_t, ServerHealth> nsd_health_;

  // disk lease state
  std::uint64_t lease_epoch_ = 0;
  double lease_duration_ = 0;     // 0 = lease machinery off (raw tests)
  double lease_renewed_at_ = 0;
  bool lease_renew_inflight_ = false;
  bool lapse_handling_ = false;   // rejoin in progress
  RejoinFn rejoin_;
  /// Bumped on crash_reset / lease lapse; async completions from an
  /// older incarnation check it and drop their results.
  std::uint64_t incarnation_ = 0;

  // believed manager view, one per metadata shard: metadata RPCs for a
  // shard target its node; NSD writes and revoke checks carry its epoch
  // (the two-epoch invariant, per token domain)
  struct MgrView {
    net::NodeId node{};
    std::uint64_t epoch = 0;
  };
  std::vector<MgrView> mgr_;
  std::function<void(std::uint32_t)> manager_watch_;

  Bytes bytes_read_remote_ = 0;
  Bytes bytes_written_remote_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t replica_reads_ = 0;      // fills served by a non-primary copy
  std::uint64_t replica_failovers_ = 0;  // runs redirected to another copy
  std::uint64_t rpc_retries_ = 0;
  std::uint64_t rpc_timeouts_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t breaker_skips_ = 0;
  std::uint64_t breaker_probes_ = 0;
  std::uint64_t ra_issued_ = 0;        // readahead fills issued
  std::uint64_t coal_blocks_ = 0;      // blocks carried by coalesced requests
  std::uint64_t coal_requests_ = 0;    // coalesced (multi-block) requests
  std::uint64_t coal_splits_ = 0;      // coalesced requests split on failure
  std::uint64_t meta_rpcs_saved_ = 0;  // token/alloc RPCs skipped by batching
  std::uint64_t lease_renewals_ = 0;   // renewal RPCs acknowledged
  std::uint64_t lease_lapses_ = 0;     // times the lease was lost
  std::uint64_t fenced_writes_ = 0;    // writes rejected by epoch fencing
  std::uint64_t mgr_takeovers_ = 0;    // manager-epoch advances adopted
  std::uint64_t mgr_reroutes_ = 0;     // metadata RPCs re-targeted
  std::uint64_t stale_mgr_rejects_ = 0;  // deposed-manager RPCs refused
  std::uint64_t recovery_probes_ = 0;  // fast-cadence recovery retries
  // Ops that saw the recovering gate: 10ms bins out to 20s.
  Histogram recovery_op_hist_{0.01, 2000, "recovery_ops"};
};

}  // namespace mgfs::gpfs
