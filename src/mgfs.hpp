// Umbrella header: the full MGFS public API.
//
//   #include "mgfs.hpp"
//
// pulls in the simulation kernel, the network and storage substrates,
// the authentication layer, the MGFS parallel file system (clusters,
// clients, mm* admin commands), the GridFTP baseline, the HSM tier and
// the workload generators. Individual headers remain includable on
// their own for faster builds.
#pragma once

#include "auth/gsi.hpp"
#include "auth/rsa.hpp"
#include "auth/sha256.hpp"
#include "auth/trust.hpp"
#include "common/histogram.hpp"
#include "common/log.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/timeseries.hpp"
#include "common/retry.hpp"
#include "common/units.hpp"
#include "fault/flaky_device.hpp"
#include "fault/injector.hpp"
#include "gpfs/cluster.hpp"
#include "gridftp/gridftp.hpp"
#include "hsm/hsm.hpp"
#include "net/presets.hpp"
#include "san/fcip.hpp"
#include "san/hba.hpp"
#include "sim/serial_resource.hpp"
#include "sim/simulator.hpp"
#include "storage/array.hpp"
#include "storage/block_device.hpp"
#include "workload/apps.hpp"
#include "workload/mpiio.hpp"
#include "workload/stream.hpp"
