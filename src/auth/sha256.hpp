// SHA-256 (FIPS 180-4), implemented from scratch — used for key
// fingerprints, certificate signatures, and challenge hashing in the
// multi-cluster authentication layer (paper §6).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace mgfs::auth {

using Digest = std::array<std::uint8_t, 32>;

/// One-shot hash of a byte span.
Digest sha256(std::span<const std::uint8_t> data);

/// Convenience: hash a string's bytes.
Digest sha256(std::string_view s);

/// Lowercase hex of a digest (the mmauth fingerprint display form).
std::string to_hex(const Digest& d);

/// First 8 bytes of the digest as a big-endian integer — the value
/// toy-RSA signs (real GPFS signs a full PKCS#1 block; the truncation is
/// forced by the 64-bit toy modulus and documented in DESIGN.md).
std::uint64_t digest_prefix64(const Digest& d);

/// Incremental interface for streaming input.
class Sha256 {
 public:
  Sha256();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

}  // namespace mgfs::auth
