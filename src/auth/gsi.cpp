#include "auth/gsi.hpp"

namespace mgfs::auth {

std::string Certificate::canonical() const {
  return "cert|" + subject_dn + "|" + issuer_dn + "|" +
         std::to_string(subject_key.n) + "|" + std::to_string(subject_key.e);
}

CertificateAuthority::CertificateAuthority(std::string dn, Rng& rng)
    : dn_(std::move(dn)), key_(KeyPair::generate(rng)) {}

Certificate CertificateAuthority::issue(const std::string& subject_dn,
                                        const PublicKey& subject_key) const {
  Certificate cert;
  cert.subject_dn = subject_dn;
  cert.issuer_dn = dn_;
  cert.subject_key = subject_key;
  cert.signature = sign(key_, cert.canonical());
  return cert;
}

bool CertificateAuthority::validate(const Certificate& cert,
                                    const PublicKey& ca_key) {
  return verify(ca_key, cert.canonical(), cert.signature);
}

void GridMapFile::map(const std::string& dn, LocalUser user) {
  entries_[dn] = std::move(user);
}

void GridMapFile::unmap(const std::string& dn) { entries_.erase(dn); }

Result<LocalUser> GridMapFile::lookup(const std::string& dn) const {
  auto it = entries_.find(dn);
  if (it == entries_.end()) {
    return err(Errc::not_found, "no grid-mapfile entry for " + dn);
  }
  return it->second;
}

bool GridMapFile::contains(const std::string& dn) const {
  return entries_.count(dn) > 0;
}

}  // namespace mgfs::auth
