// GSI-style identity: certificates, a certificate authority, and the
// grid-mapfile that maps a grid DN onto a site-local UID.
//
// Paper §6 motivation: a TeraGrid user has *different* UIDs at SDSC,
// NCSA and ANL, but wants files on the central GFS to belong to *him*.
// The reproduction keeps file ownership as a grid principal (the DN) and
// resolves it through each cluster's grid-mapfile, exactly the mapping
// problem the authors describe.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "auth/rsa.hpp"
#include "common/result.hpp"

namespace mgfs::auth {

/// A site-local account (what a DN resolves to at one site).
struct LocalUser {
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::string username;

  friend bool operator==(const LocalUser&, const LocalUser&) = default;
};

struct Certificate {
  std::string subject_dn;  // e.g. "/C=US/O=NPACI/OU=SDSC/CN=alice"
  std::string issuer_dn;
  PublicKey subject_key;
  std::uint64_t signature = 0;  // CA signature over canonical()

  /// The byte string the CA signs.
  std::string canonical() const;
};

class CertificateAuthority {
 public:
  CertificateAuthority(std::string dn, Rng& rng);

  Certificate issue(const std::string& subject_dn,
                    const PublicKey& subject_key) const;
  const PublicKey& public_key() const { return key_.pub; }
  const std::string& dn() const { return dn_; }

  /// Validate a certificate against a CA public key.
  static bool validate(const Certificate& cert, const PublicKey& ca_key);

 private:
  std::string dn_;
  KeyPair key_;
};

/// One site's DN -> local account map (the Globus grid-mapfile).
class GridMapFile {
 public:
  /// Register (or update) a mapping.
  void map(const std::string& dn, LocalUser user);
  void unmap(const std::string& dn);

  /// Resolve a DN; not_found if the site never heard of this identity.
  Result<LocalUser> lookup(const std::string& dn) const;
  bool contains(const std::string& dn) const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::string, LocalUser> entries_;
};

}  // namespace mgfs::auth
