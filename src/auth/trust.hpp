// Cluster-to-cluster trust: the mmauth model of GPFS 2.3 GA (paper §6.2).
//
// Each cluster owns an RSA keypair. Administrators exchange *public*
// keys out of band (the paper: "via an out-of-band mechanism such as
// e-mail"), then the exporting cluster's admin runs `mmauth add` to
// admit the remote cluster and `mmauth grant` to expose specific file
// systems read-only or read-write (the PTF 2 per-filesystem control).
// Mounting performs a mutual challenge–response: each side proves
// possession of its private key; no remote root shell is involved —
// the redesign the authors contributed.
//
// cipherList selects what the resulting session protects:
//   AUTHONLY — authentication only, data in the clear (GPFS default)
//   encrypt  — all filesystem traffic encrypted (per-byte CPU cost on
//              both ends; visible in bench/tab_auth_modes)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "auth/rsa.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace mgfs::auth {

enum class CipherList {
  none,      // pre-2.3 behaviour: no cluster authentication at all
  authonly,  // RSA mutual authentication, cleartext data
  encrypt,   // RSA mutual authentication + encrypted traffic
};

constexpr const char* cipher_name(CipherList c) {
  switch (c) {
    case CipherList::none: return "none";
    case CipherList::authonly: return "AUTHONLY";
    case CipherList::encrypt: return "encrypt";
  }
  return "?";
}

/// CPU seconds per byte charged to each endpoint for payload protection.
/// 2005-era software AES on an IA64 NSD server moved ~150 MB/s per CPU.
constexpr double cipher_cpu_s_per_byte(CipherList c) {
  return c == CipherList::encrypt ? 1.0 / 150e6 : 0.0;
}

enum class AccessMode { none, read_only, read_write };

constexpr const char* access_name(AccessMode m) {
  switch (m) {
    case AccessMode::none: return "none";
    case AccessMode::read_only: return "ro";
    case AccessMode::read_write: return "rw";
  }
  return "?";
}

/// The exporting cluster's view of who may connect and mount what.
class TrustStore {
 public:
  /// `mmauth add <cluster> -k <keyfile>`: admit a remote cluster's key.
  void add_cluster(const std::string& cluster, const PublicKey& key);
  /// `mmauth delete`: forget a cluster (revokes all its grants).
  void remove_cluster(const std::string& cluster);
  bool knows(const std::string& cluster) const;
  Result<PublicKey> key_of(const std::string& cluster) const;

  /// `mmauth grant <cluster> -f <fs> [-a ro|rw]`.
  Status grant(const std::string& cluster, const std::string& fs,
               AccessMode mode);
  /// `mmauth deny`.
  void revoke(const std::string& cluster, const std::string& fs);

  /// Effective access of `cluster` to `fs` (none if unknown/ungranted).
  AccessMode access(const std::string& cluster, const std::string& fs) const;

  std::size_t cluster_count() const { return clusters_.size(); }
  /// Admitted cluster names, sorted (for `mmauth show`).
  std::vector<std::string> cluster_names() const;
  /// (fs, mode) grants of one cluster, sorted by fs.
  std::vector<std::pair<std::string, AccessMode>> grants_of(
      const std::string& cluster) const;

 private:
  struct Entry {
    PublicKey key;
    std::unordered_map<std::string, AccessMode> grants;  // fs -> mode
  };
  std::unordered_map<std::string, Entry> clusters_;
};

/// A nonce challenge issued by one side of the handshake.
struct Challenge {
  std::uint64_t nonce = 0;
  std::string issuer;   // cluster that issued the challenge
  std::string subject;  // cluster expected to answer

  /// The byte string the subject must sign.
  std::string payload() const;
};

/// Successful handshake outcome.
struct SessionTicket {
  std::string client_cluster;
  std::string server_cluster;
  CipherList cipher = CipherList::authonly;
  std::uint64_t session_id = 0;
};

/// Server half of the mutual handshake (runs where the FS is exported).
class HandshakeServer {
 public:
  HandshakeServer(std::string cluster, KeyPair key, const TrustStore* trust,
                  CipherList cipher, Rng rng);

  const std::string& cluster() const { return cluster_; }
  const PublicKey& public_key() const { return key_.pub; }
  CipherList cipher() const { return cipher_; }

  /// Phase 1: the server challenges the would-be client. Fails with
  /// not_authorized if the cluster was never mmauth-added.
  Result<Challenge> issue_challenge(const std::string& client_cluster);

  /// Phase 2: verify the client's signature over the outstanding
  /// challenge. On success the challenge is consumed (no replay) and a
  /// ticket is minted.
  Result<SessionTicket> complete(const std::string& client_cluster,
                                 std::uint64_t signature);

  /// Mutual proof: sign a client-issued challenge aimed at this server.
  std::uint64_t prove(const Challenge& ch) const;

  std::size_t outstanding_challenges() const {
    std::size_t n = 0;
    for (const auto& [cluster, v] : outstanding_) {
      (void)cluster;
      n += v.size();
    }
    return n;
  }

 private:
  std::string cluster_;
  KeyPair key_;
  const TrustStore* trust_;
  CipherList cipher_;
  Rng rng_;
  // Several mounts from one cluster may be in flight at once; each gets
  // its own nonce and phase 2 consumes exactly the one it answers.
  std::unordered_map<std::string, std::vector<Challenge>> outstanding_;
  std::uint64_t next_session_ = 1;
};

/// Client half: answers server challenges and verifies the server's
/// counter-proof against the expected key (from mmremotecluster add).
class HandshakeClient {
 public:
  HandshakeClient(std::string cluster, KeyPair key, Rng rng);

  const std::string& cluster() const { return cluster_; }
  const PublicKey& public_key() const { return key_.pub; }

  std::uint64_t respond(const Challenge& ch) const;

  /// Issue our own challenge toward `server_cluster` (mutual auth).
  Challenge challenge(const std::string& server_cluster);

  /// Check the server's answer against the key the admin registered.
  bool verify_server(const Challenge& ch, std::uint64_t sig,
                     const PublicKey& expected_server_key) const;

 private:
  std::string cluster_;
  KeyPair key_;
  Rng rng_;
};

}  // namespace mgfs::auth
