// Toy RSA over a 64-bit modulus.
//
// *** SIMULATION ONLY — NOT CRYPTOGRAPHICALLY SECURE. ***
// The paper's contribution (§6) is the *protocol*: per-cluster RSA
// keypairs exchanged out of band, challenge–response cluster
// authentication, per-filesystem grants, optional traffic encryption.
// A 64-bit modulus preserves every protocol property (signatures verify
// iff made with the matching private key over the same bytes) while
// keeping the arithmetic dependency-free; DESIGN.md records the
// substitution. Keys are two random 32-bit primes, e = 65537.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/rng.hpp"

namespace mgfs::auth {

struct PublicKey {
  std::uint64_t n = 0;  // modulus
  std::uint64_t e = 0;  // public exponent

  /// mmauth-style fingerprint: sha256 over the serialized key.
  std::string fingerprint() const;

  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

struct KeyPair {
  PublicKey pub;
  std::uint64_t d = 0;  // private exponent

  /// Generate a fresh keypair from the given deterministic stream.
  static KeyPair generate(Rng& rng);
};

/// Modular arithmetic helpers (exposed for tests).
std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m);
std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m);
bool is_probable_prime(std::uint64_t n, Rng& rng, int rounds = 24);

/// Sign the SHA-256 of `msg` (truncated into the modulus) with `kp`.
std::uint64_t sign(const KeyPair& kp, std::string_view msg);
std::uint64_t sign(const KeyPair& kp, std::span<const std::uint8_t> msg);

/// Verify a signature against a public key.
bool verify(const PublicKey& pk, std::string_view msg, std::uint64_t sig);
bool verify(const PublicKey& pk, std::span<const std::uint8_t> msg,
            std::uint64_t sig);

}  // namespace mgfs::auth
