#include "auth/trust.hpp"

#include <algorithm>

namespace mgfs::auth {

std::vector<std::string> TrustStore::cluster_names() const {
  std::vector<std::string> names;
  names.reserve(clusters_.size());
  for (const auto& [name, e] : clusters_) {
    (void)e;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::pair<std::string, AccessMode>> TrustStore::grants_of(
    const std::string& cluster) const {
  std::vector<std::pair<std::string, AccessMode>> out;
  auto it = clusters_.find(cluster);
  if (it == clusters_.end()) return out;
  out.assign(it->second.grants.begin(), it->second.grants.end());
  std::sort(out.begin(), out.end());
  return out;
}

void TrustStore::add_cluster(const std::string& cluster,
                             const PublicKey& key) {
  clusters_[cluster].key = key;
}

void TrustStore::remove_cluster(const std::string& cluster) {
  clusters_.erase(cluster);
}

bool TrustStore::knows(const std::string& cluster) const {
  return clusters_.count(cluster) > 0;
}

Result<PublicKey> TrustStore::key_of(const std::string& cluster) const {
  auto it = clusters_.find(cluster);
  if (it == clusters_.end()) {
    return err(Errc::not_authorized, "unknown cluster " + cluster);
  }
  return it->second.key;
}

Status TrustStore::grant(const std::string& cluster, const std::string& fs,
                         AccessMode mode) {
  auto it = clusters_.find(cluster);
  if (it == clusters_.end()) {
    return Status(Errc::not_authorized,
                  "mmauth add " + cluster + " before granting");
  }
  it->second.grants[fs] = mode;
  return Status{};
}

void TrustStore::revoke(const std::string& cluster, const std::string& fs) {
  auto it = clusters_.find(cluster);
  if (it != clusters_.end()) it->second.grants.erase(fs);
}

AccessMode TrustStore::access(const std::string& cluster,
                              const std::string& fs) const {
  auto it = clusters_.find(cluster);
  if (it == clusters_.end()) return AccessMode::none;
  auto g = it->second.grants.find(fs);
  if (g == it->second.grants.end()) return AccessMode::none;
  return g->second;
}

std::string Challenge::payload() const {
  return "challenge|" + std::to_string(nonce) + "|" + issuer + "|" + subject;
}

HandshakeServer::HandshakeServer(std::string cluster, KeyPair key,
                                 const TrustStore* trust, CipherList cipher,
                                 Rng rng)
    : cluster_(std::move(cluster)),
      key_(key),
      trust_(trust),
      cipher_(cipher),
      rng_(rng) {
  MGFS_ASSERT(trust_ != nullptr, "handshake server needs a trust store");
}

Result<Challenge> HandshakeServer::issue_challenge(
    const std::string& client_cluster) {
  if (cipher_ == CipherList::none) {
    // Pre-2.3 mode: anyone may proceed; issue a dummy challenge.
    Challenge ch{0, cluster_, client_cluster};
    outstanding_[client_cluster].push_back(ch);
    return ch;
  }
  if (!trust_->knows(client_cluster)) {
    return err(Errc::not_authorized,
               "cluster " + client_cluster + " not in mmauth list");
  }
  Challenge ch{rng_.next() | 1ULL, cluster_, client_cluster};
  outstanding_[client_cluster].push_back(ch);
  return ch;
}

Result<SessionTicket> HandshakeServer::complete(
    const std::string& client_cluster, std::uint64_t signature) {
  auto it = outstanding_.find(client_cluster);
  if (it == outstanding_.end() || it->second.empty()) {
    return err(Errc::not_authenticated,
               "no outstanding challenge for " + client_cluster);
  }
  auto& pending = it->second;
  if (cipher_ != CipherList::none) {
    auto key = trust_->key_of(client_cluster);
    if (!key.ok()) return key.error();
    // Find the outstanding challenge this signature answers; consume
    // exactly that one (single use: replays fail).
    bool matched = false;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (verify(*key, pending[i].payload(), signature)) {
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        matched = true;
        break;
      }
    }
    if (!matched) {
      return err(Errc::not_authenticated,
                 "bad challenge signature from " + client_cluster);
    }
  } else {
    pending.pop_back();
  }
  if (pending.empty()) outstanding_.erase(it);
  SessionTicket t;
  t.client_cluster = client_cluster;
  t.server_cluster = cluster_;
  t.cipher = cipher_;
  t.session_id = next_session_++;
  return t;
}

std::uint64_t HandshakeServer::prove(const Challenge& ch) const {
  return sign(key_, ch.payload());
}

HandshakeClient::HandshakeClient(std::string cluster, KeyPair key, Rng rng)
    : cluster_(std::move(cluster)), key_(key), rng_(rng) {}

std::uint64_t HandshakeClient::respond(const Challenge& ch) const {
  return sign(key_, ch.payload());
}

Challenge HandshakeClient::challenge(const std::string& server_cluster) {
  return Challenge{rng_.next() | 1ULL, cluster_, server_cluster};
}

bool HandshakeClient::verify_server(
    const Challenge& ch, std::uint64_t sig,
    const PublicKey& expected_server_key) const {
  return verify(expected_server_key, ch.payload(), sig);
}

}  // namespace mgfs::auth
