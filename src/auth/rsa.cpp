#include "auth/rsa.hpp"

#include "auth/sha256.hpp"
#include "common/result.hpp"

namespace mgfs::auth {
namespace {

using u128 = unsigned __int128;

using i128 = __int128;

/// Extended Euclid in 128-bit (phi can exceed 2^63): returns gcd(a, b),
/// sets x with a*x ≡ gcd (mod b).
i128 ext_gcd(i128 a, i128 b, i128& x, i128& y) {
  if (b == 0) {
    x = 1;
    y = 0;
    return a;
  }
  i128 x1, y1;
  const i128 g = ext_gcd(b, a % b, x1, y1);
  x = y1;
  y = x1 - (a / b) * y1;
  return g;
}

std::uint64_t modinv(std::uint64_t a, std::uint64_t m) {
  i128 x, y;
  const i128 g = ext_gcd(static_cast<i128>(a), static_cast<i128>(m), x, y);
  MGFS_ASSERT(g == 1, "modinv of non-coprime value");
  i128 r = x % static_cast<i128>(m);
  if (r < 0) r += static_cast<i128>(m);
  return static_cast<std::uint64_t>(r);
}

std::uint64_t random_prime32(Rng& rng) {
  for (;;) {
    // Odd 32-bit value with the top bit set so n = p*q is ~64 bits.
    std::uint64_t c = (rng.next() & 0xffffffffULL) | 0x80000001ULL;
    if (is_probable_prime(c, rng)) return c;
  }
}

}  // namespace

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>((u128(a) * u128(b)) % u128(m));
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  MGFS_ASSERT(m > 0, "powmod modulus zero");
  if (m == 1) return 0;
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool is_probable_prime(std::uint64_t n, Rng& rng, int rounds) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // Miller–Rabin with random bases.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (int i = 0; i < rounds; ++i) {
    const std::uint64_t a = rng.range(2, n - 2);
    std::uint64_t x = powmod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int j = 0; j < r - 1; ++j) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::string PublicKey::fingerprint() const {
  const std::string blob =
      "mgfs-rsa:" + std::to_string(n) + ":" + std::to_string(e);
  return to_hex(sha256(blob));
}

KeyPair KeyPair::generate(Rng& rng) {
  for (;;) {
    const std::uint64_t p = random_prime32(rng);
    std::uint64_t q = random_prime32(rng);
    if (p == q) continue;
    const std::uint64_t n = p * q;  // both ~2^31.5+, n < 2^64
    const std::uint64_t phi = (p - 1) * (q - 1);
    constexpr std::uint64_t e = 65537;
    if (phi % e == 0) continue;  // e must be coprime to phi
    KeyPair kp;
    kp.pub.n = n;
    kp.pub.e = e;
    kp.d = modinv(e, phi);
    // Sanity round trip before handing the key out.
    const std::uint64_t m = 0x123456789abcdefULL % n;
    if (powmod(powmod(m, e, n), kp.d, n) != m) continue;
    return kp;
  }
}

std::uint64_t sign(const KeyPair& kp, std::span<const std::uint8_t> msg) {
  MGFS_ASSERT(kp.pub.n > 1 && kp.d > 0, "signing with an empty key");
  const std::uint64_t h = digest_prefix64(sha256(msg)) % kp.pub.n;
  return powmod(h, kp.d, kp.pub.n);
}

std::uint64_t sign(const KeyPair& kp, std::string_view msg) {
  return sign(kp, std::span<const std::uint8_t>(
                      reinterpret_cast<const std::uint8_t*>(msg.data()),
                      msg.size()));
}

bool verify(const PublicKey& pk, std::span<const std::uint8_t> msg,
            std::uint64_t sig) {
  if (pk.n <= 1 || pk.e == 0) return false;
  const std::uint64_t h = digest_prefix64(sha256(msg)) % pk.n;
  return powmod(sig, pk.e, pk.n) == h;
}

bool verify(const PublicKey& pk, std::string_view msg, std::uint64_t sig) {
  return verify(pk,
                std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(msg.data()),
                    msg.size()),
                sig);
}

}  // namespace mgfs::auth
