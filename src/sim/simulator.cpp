#include "sim/simulator.hpp"

#include <utility>

#include "common/result.hpp"

namespace mgfs::sim {

void Simulator::at(Time t, Callback cb) {
  MGFS_ASSERT(t >= now_, "cannot schedule event in the past");
  MGFS_ASSERT(static_cast<bool>(cb), "null event callback");
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Simulator::after(Time delay, Callback cb) {
  MGFS_ASSERT(delay >= 0.0, "negative delay");
  at(now_ + delay, std::move(cb));
}

TimerId Simulator::after_cancellable(Time delay, Callback cb) {
  MGFS_ASSERT(delay >= 0.0, "negative delay");
  MGFS_ASSERT(static_cast<bool>(cb), "null event callback");
  const std::uint64_t id = next_seq_++;
  queue_.push(Event{now_ + delay, id, std::move(cb), /*cancellable=*/true});
  cancellable_.insert(id);
  return id;
}

void Simulator::cancel(TimerId id) {
  // Only ids still queued are worth remembering; cancelling a timer
  // that already fired (or was never cancellable) is a no-op.
  if (cancellable_.count(id) > 0) cancelled_.insert(id);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the callback is moved out via const_cast,
  // which is safe because pop() immediately discards the node.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  if (ev.cancellable) {
    cancellable_.erase(ev.seq);
    // Discard without advancing now(): a disarmed watchdog must not
    // stretch the run out to its expiry time.
    if (cancelled_.erase(ev.seq) > 0) return true;
  }
  now_ = ev.t;
  ++processed_;
  ev.cb();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Time t) {
  MGFS_ASSERT(t >= now_, "run_until into the past");
  while (!queue_.empty() && queue_.top().t <= t) step();
  now_ = t;
}

void Simulator::every(Time start, Time interval, Time until,
                      std::function<void(Time)> cb) {
  MGFS_ASSERT(interval > 0.0, "non-positive sampling interval");
  if (start > until) return;
  at(start, [this, interval, until, cb = std::move(cb)]() mutable {
    cb(now());
    every(now() + interval, interval, until, std::move(cb));
  });
}

}  // namespace mgfs::sim
