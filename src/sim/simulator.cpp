#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/result.hpp"

namespace mgfs::sim {

namespace {

// Min-heap comparator over (t, seq): std::push_heap/pop_heap build a
// max-heap, so "greater" sorts the earliest event to the top. seq is
// unique, making this a total order — heap instability can't reorder.
struct ReadyLater {
  bool operator()(const auto* a, const auto* b) const {
    if (a->t != b->t) return a->t > b->t;
    return a->seq > b->seq;
  }
};

}  // namespace

Simulator::Simulator() = default;

Simulator::~Simulator() = default;

std::uint64_t Simulator::tick_of(Time t) {
  const double ticks = t * kTicksPerSecond;
  // Clamp absurd horizons (t ~ 10^12 s and beyond) instead of letting
  // the double->u64 conversion go undefined; colliding clamped ticks
  // are still ordered exactly by (t, seq) in the ready heap.
  if (ticks >= 9.2e18) return ~0ULL >> 1;
  return static_cast<std::uint64_t>(ticks);
}

Simulator::EventNode* Simulator::alloc_node() {
  if (free_list_ == nullptr) {
    auto chunk = std::make_unique<EventNode[]>(kChunk);
    const auto base = static_cast<std::uint32_t>(slab_.size() * kChunk);
    for (std::size_t i = kChunk; i-- > 0;) {
      chunk[i].idx = base + static_cast<std::uint32_t>(i);
      chunk[i].next = free_list_;
      free_list_ = &chunk[i];
    }
    slab_.push_back(std::move(chunk));
  }
  EventNode* n = free_list_;
  free_list_ = n->next;
  ++n->gen;  // TimerIds from earlier incarnations of this slot go stale
  n->next = nullptr;
  n->pprev = nullptr;
  return n;
}

void Simulator::free_node(EventNode* n) {
  n->cb = nullptr;
  n->state = kFree;
  n->cancellable = false;
  n->next = free_list_;
  free_list_ = n;
}

void Simulator::place(EventNode* n) {
  const std::uint64_t diff = n->tick ^ cur_tick_;
  if (n->tick <= cur_tick_ || diff == 0) {
    // Due now (or pulled behind the wheel clock by a horizon peek):
    // straight onto the ready heap, where exact (t, seq) order rules.
    push_ready(n);
    return;
  }
  const int msb = 63 - __builtin_clzll(diff);
  if (msb >= kWheelBits) {
    // Beyond the wheel horizon: overflow list. Every overflow tick is
    // provably later than every wheel tick (it differs from the wheel
    // clock in a higher digit), so these are never due before the
    // wheel drains.
    n->state = kInOverflow;
    n->next = overflow_;
    n->pprev = &overflow_;
    if (overflow_ != nullptr) overflow_->pprev = &n->next;
    overflow_ = n;
    ++overflow_size_;
    return;
  }
  const int level = msb / kLevelBits;
  const auto slot = static_cast<std::uint8_t>(
      (n->tick >> (level * kLevelBits)) & (kSlots - 1));
  n->state = kInWheel;
  n->level = static_cast<std::uint8_t>(level);
  n->slot = slot;
  EventNode*& head = buckets_[level][slot];
  n->next = head;
  n->pprev = &head;
  if (head != nullptr) head->pprev = &n->next;
  head = n;
  occupied_[level] |= 1ULL << slot;
}

void Simulator::push_ready(EventNode* n) {
  n->state = kInReady;
  n->pprev = nullptr;
  n->next = nullptr;
  ready_.push_back(n);
  std::push_heap(ready_.begin(), ready_.end(), ReadyLater{});
}

Simulator::EventNode* Simulator::pop_ready() {
  if (ready_.empty()) return nullptr;
  std::pop_heap(ready_.begin(), ready_.end(), ReadyLater{});
  EventNode* n = ready_.back();
  ready_.pop_back();
  return n;
}

bool Simulator::advance() {
  if (live_ == 0) return false;
  for (;;) {
    // Lowest non-empty level always holds the earliest pending tick:
    // wheel ticks agree with the clock above their level, so a level-l
    // bucket's span ends before any level-(l+1) candidate begins.
    bool touched = false;
    for (int level = 0; level < kLevels; ++level) {
      const auto idx = static_cast<int>(
          (cur_tick_ >> (level * kLevelBits)) & (kSlots - 1));
      const std::uint64_t w = occupied_[level] >> idx;
      if (w == 0) continue;
      const int slot = idx + __builtin_ctzll(w);
      // Jump the wheel clock to the bucket's span start (digits below
      // `level` zeroed). No event can live in the skipped gap: lower
      // levels were empty and lower slots of this level were empty.
      const std::uint64_t span_mask =
          (level + 1) * kLevelBits >= 64
              ? ~0ULL
              : (1ULL << ((level + 1) * kLevelBits)) - 1;
      const std::uint64_t target =
          (cur_tick_ & ~span_mask) |
          (static_cast<std::uint64_t>(slot) << (level * kLevelBits));
      if (target > cur_tick_) cur_tick_ = target;
      // Detach the bucket and re-place every node: at level 0 they are
      // due (tick == cur_tick_) and land on the ready heap; at higher
      // levels they cascade strictly downward.
      EventNode* n = buckets_[level][slot];
      buckets_[level][slot] = nullptr;
      occupied_[level] &= ~(1ULL << slot);
      while (n != nullptr) {
        EventNode* next = n->next;
        place(n);
        n = next;
      }
      touched = true;
      break;
    }
    if (!ready_.empty()) return true;
    if (touched) continue;  // cascaded a bucket; rescan from level 0
    if (overflow_ != nullptr) {
      // Wheel drained with far-future events parked: jump the clock to
      // the earliest one and re-home everything now within the horizon.
      std::uint64_t min_tick = ~0ULL;
      for (EventNode* n = overflow_; n != nullptr; n = n->next) {
        min_tick = std::min(min_tick, n->tick);
      }
      cur_tick_ = min_tick;
      EventNode* n = overflow_;
      overflow_ = nullptr;
      overflow_size_ = 0;
      while (n != nullptr) {
        EventNode* next = n->next;
        place(n);  // re-split: same high digits -> wheel, else overflow
        n = next;
      }
      continue;
    }
    return !ready_.empty();
  }
}

Simulator::EventNode* Simulator::next_live() {
  for (;;) {
    if (ready_.empty() && !advance()) return nullptr;
    EventNode* n = pop_ready();
    if (n == nullptr) return nullptr;
    if (n->state == kReadyCancelled) {
      free_node(n);  // live_ was charged at cancel() time
      continue;
    }
    return n;
  }
}

const Simulator::EventNode* Simulator::peek_live() {
  for (;;) {
    if (ready_.empty() && !advance()) return nullptr;
    const EventNode* n = ready_.front();
    if (n->state == kReadyCancelled) {
      free_node(pop_ready());
      continue;
    }
    return n;
  }
}

void Simulator::schedule(Time t, Callback cb, bool cancellable,
                         TimerId* id_out) {
  MGFS_ASSERT(t >= now_, "cannot schedule event in the past");
  MGFS_ASSERT(static_cast<bool>(cb), "null event callback");
  EventNode* n = alloc_node();
  n->t = t;
  n->tick = tick_of(t);
  n->seq = next_seq_++;
  n->cb = std::move(cb);
  n->cancellable = cancellable;
  if (id_out != nullptr) {
    *id_out = (static_cast<std::uint64_t>(n->gen) << 32) | n->idx;
  }
  ++live_;
  place(n);
}

void Simulator::at(Time t, Callback cb) {
  schedule(t, std::move(cb), /*cancellable=*/false, nullptr);
}

void Simulator::after(Time delay, Callback cb) {
  MGFS_ASSERT(delay >= 0.0, "negative delay");
  at(now_ + delay, std::move(cb));
}

TimerId Simulator::after_cancellable(Time delay, Callback cb) {
  MGFS_ASSERT(delay >= 0.0, "negative delay");
  TimerId id = 0;
  schedule(now_ + delay, std::move(cb), /*cancellable=*/true, &id);
  return id;
}

void Simulator::cancel(TimerId id) {
  const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (idx >= slab_.size() * kChunk) return;
  EventNode* n = &slab_[idx / kChunk][idx % kChunk];
  if (n->gen != static_cast<std::uint32_t>(id >> 32)) return;  // fired
  if (!n->cancellable) return;
  switch (n->state) {
    case kInWheel: {
      *n->pprev = n->next;
      if (n->next != nullptr) n->next->pprev = n->pprev;
      if (buckets_[n->level][n->slot] == nullptr) {
        occupied_[n->level] &= ~(1ULL << n->slot);
      }
      --live_;
      free_node(n);
      return;
    }
    case kInOverflow: {
      *n->pprev = n->next;
      if (n->next != nullptr) n->next->pprev = n->pprev;
      --overflow_size_;
      --live_;
      free_node(n);
      return;
    }
    case kInReady:
      // Mid-heap: tombstone, reclaimed when it surfaces (the ready
      // heap only ever holds the current tick's few events).
      n->state = kReadyCancelled;
      n->cb = nullptr;
      --live_;
      return;
    default:
      return;  // already fired or cancelled
  }
}

bool Simulator::step() {
  EventNode* n = next_live();
  if (n == nullptr) return false;
  now_ = n->t;
  ++processed_;
  --live_;
  Callback cb = std::move(n->cb);
  free_node(n);
  cb();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Time t) {
  MGFS_ASSERT(t >= now_, "run_until into the past");
  for (;;) {
    const EventNode* n = peek_live();
    if (n == nullptr || n->t > t) break;
    step();
  }
  now_ = t;
}

void Simulator::every(Time start, Time interval, Time until,
                      std::function<void(Time)> cb) {
  MGFS_ASSERT(interval > 0.0, "non-positive sampling interval");
  if (start > until) return;
  at(start, [this, interval, until, cb = std::move(cb)]() mutable {
    cb(now());
    every(now() + interval, interval, until, std::move(cb));
  });
}

}  // namespace mgfs::sim
