// Discrete-event simulation kernel.
//
// MGFS models the whole grid storage stack (WAN links, FC loops, disks,
// NSD servers, clients) as callbacks scheduled on one Simulator. Time is
// simulated seconds in a double; ties are broken by insertion order so
// runs are fully deterministic.
//
// Components hold `Simulator&` and schedule continuations:
//
//   sim.after(0.080, [this] { on_ack(); });   // 80 ms later
//
// There is no implicit wall-clock anywhere in the library.
//
// The event queue is a hierarchical timer wheel (see DESIGN.md §7):
// schedule and cancel are O(1), and a cancelled timer is unlinked from
// its bucket immediately instead of rotting in the queue until its
// expiry surfaces — with millions of in-flight RPC deadlines the old
// binary heap was dominated by dead timers. Event nodes live in a slab
// with a free list, and callbacks use a small-buffer-optimized callable
// (sim/callback.hpp) so the common capture fits inline. The observable
// order is exactly the old one: events run in (time, insertion-seq)
// order, so seeded runs stay byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/callback.hpp"

namespace mgfs::sim {

using Time = double;  // simulated seconds
using Callback = InlineCallback;

/// Handle for a cancellable timer; 0 is never a valid id.
using TimerId = std::uint64_t;

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now).
  void at(Time t, Callback cb);

  /// Schedule `cb` after a delay (>= 0).
  void after(Time delay, Callback cb);

  /// Schedule `cb` to run at the current time, after already-queued
  /// same-time events (a "yield": breaks deep synchronous recursion).
  void defer(Callback cb) { after(0.0, std::move(cb)); }

  /// Like after(), but returns a handle that cancel() accepts. A
  /// cancelled event is unlinked from the queue immediately — it
  /// neither runs nor advances now(), so a watchdog that was disarmed
  /// in time does not stretch the run to its expiry (deadline timers
  /// fire on almost no call; without this every RPC would pad the
  /// drain by the deadline).
  TimerId after_cancellable(Time delay, Callback cb);

  /// Cancel a timer from after_cancellable(). Safe to call after the
  /// timer fired (no-op); ids are never reused.
  void cancel(TimerId id);

  /// Execute the next event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run until simulated time reaches `t` (events at exactly `t` run).
  /// Afterwards now() == t if the run was cut short by the horizon.
  void run_until(Time t);

  /// Schedule `cb(t)` every `interval` until `until` (inclusive start at
  /// `start`). Used by bandwidth samplers and periodic workloads.
  void every(Time start, Time interval, Time until,
             std::function<void(Time)> cb);

  bool empty() const { return live_ == 0; }
  /// Live (non-cancelled) scheduled events.
  std::size_t pending() const { return live_; }
  std::uint64_t events_processed() const { return processed_; }

 private:
  // --- wheel geometry ------------------------------------------------
  // Ticks are microseconds of simulated time. 6 levels of 64 slots
  // bucket events by the most-significant 6-bit digit in which their
  // tick differs from the wheel clock; events further than 2^36 ticks
  // (~19 simulated hours) out sit on an overflow list until the wheel
  // drains into their range.
  static constexpr double kTicksPerSecond = 1e6;
  static constexpr int kLevelBits = 6;
  static constexpr int kSlots = 1 << kLevelBits;     // 64
  static constexpr int kLevels = 6;
  static constexpr int kWheelBits = kLevelBits * kLevels;  // 36

  struct EventNode {
    Time t = 0.0;
    std::uint64_t tick = 0;
    std::uint64_t seq = 0;
    Callback cb;
    EventNode* next = nullptr;
    EventNode** pprev = nullptr;  // hlist back-link for O(1) unlink
    std::uint32_t gen = 0;        // bumped per allocation; TimerId salt
    std::uint32_t idx = 0;        // slab index (TimerId low word)
    std::uint8_t state = 0;       // State enum
    std::uint8_t level = 0;       // wheel level when state == kInWheel
    std::uint8_t slot = 0;        // wheel slot when state == kInWheel
    bool cancellable = false;
  };
  enum State : std::uint8_t {
    kFree = 0,
    kInWheel,
    kInOverflow,
    kInReady,
    kReadyCancelled,
  };

  static std::uint64_t tick_of(Time t);

  EventNode* alloc_node();
  void free_node(EventNode* n);
  void schedule(Time t, Callback cb, bool cancellable, TimerId* id_out);
  void place(EventNode* n);           // bucket by (tick ^ cur_tick_)
  void push_ready(EventNode* n);
  EventNode* pop_ready();             // min (t, seq); pops cancelled too
  bool advance();                     // pull next bucket(s) into ready_
  EventNode* next_live();             // nullptr when drained
  const EventNode* peek_live();       // advance + skim without executing

  Time now_ = 0.0;
  std::uint64_t cur_tick_ = 0;  // wheel clock; >= tick_of(now_)
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;  // scheduled minus cancelled minus fired

  // Wheel buckets: singly-linked with back-links (hlist). occupied_[l]
  // has bit s set iff buckets_[l][s] is non-empty.
  EventNode* buckets_[kLevels][kSlots] = {};
  std::uint64_t occupied_[kLevels] = {};
  EventNode* overflow_ = nullptr;  // > 2^36 ticks out; unsorted hlist
  std::size_t overflow_size_ = 0;

  // Events due at cur_tick_ (or pulled forward by run_until horizon
  // checks), ordered by (t, seq) in a binary min-heap.
  std::vector<EventNode*> ready_;

  // Slab of event nodes, stable addresses, chunked; free list threaded
  // through `next`.
  static constexpr std::size_t kChunk = 256;
  std::vector<std::unique_ptr<EventNode[]>> slab_;
  EventNode* free_list_ = nullptr;
};

}  // namespace mgfs::sim
