// Discrete-event simulation kernel.
//
// MGFS models the whole grid storage stack (WAN links, FC loops, disks,
// NSD servers, clients) as callbacks scheduled on one Simulator. Time is
// simulated seconds in a double; ties are broken by insertion order so
// runs are fully deterministic.
//
// Components hold `Simulator&` and schedule continuations:
//
//   sim.after(0.080, [this] { on_ack(); });   // 80 ms later
//
// There is no implicit wall-clock anywhere in the library.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace mgfs::sim {

using Time = double;  // simulated seconds
using Callback = std::function<void()>;

/// Handle for a cancellable timer; 0 is never a valid id.
using TimerId = std::uint64_t;

class Simulator {
 public:

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now).
  void at(Time t, Callback cb);

  /// Schedule `cb` after a delay (>= 0).
  void after(Time delay, Callback cb);

  /// Schedule `cb` to run at the current time, after already-queued
  /// same-time events (a "yield": breaks deep synchronous recursion).
  void defer(Callback cb) { after(0.0, std::move(cb)); }

  /// Like after(), but returns a handle that cancel() accepts. A
  /// cancelled event is discarded when it surfaces — it neither runs
  /// nor advances now(), so a watchdog that was disarmed in time does
  /// not stretch the run to its expiry (deadline timers fire on almost
  /// no call; without this every RPC would pad the drain by the
  /// deadline).
  TimerId after_cancellable(Time delay, Callback cb);

  /// Cancel a timer from after_cancellable(). Safe to call after the
  /// timer fired (no-op); ids are never reused.
  void cancel(TimerId id);

  /// Execute the next event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run until simulated time reaches `t` (events at exactly `t` run).
  /// Afterwards now() == t if the run was cut short by the horizon.
  void run_until(Time t);

  /// Schedule `cb(t)` every `interval` until `until` (inclusive start at
  /// `start`). Used by bandwidth samplers and periodic workloads.
  void every(Time start, Time interval, Time until,
             std::function<void(Time)> cb);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;  // FIFO among equal-time events
    Callback cb;
    bool cancellable = false;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // seq ids of cancelled-but-still-queued events; entries are erased
  // when the matching event surfaces, so the set stays small.
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> cancellable_;
};

}  // namespace mgfs::sim
