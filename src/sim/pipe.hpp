// Pipe: a rate-limited FIFO resource with propagation latency.
//
// This one primitive models every serial bottleneck in the system:
//   * a network link (rate = line rate, latency = propagation delay)
//   * a Fibre Channel port or arbitrated loop (2 Gb/s, ~0 latency)
//   * a RAID controller (the paper: "200 MB/s per controller")
//   * a tape drive (30-120 MB/s streaming)
//
// Semantics are store-and-forward: a transfer of n bytes begins
// serializing when the pipe frees up (FIFO), occupies the pipe for
// n/rate seconds, and is delivered latency seconds after its last byte
// is serialized. Utilization and per-bin throughput are tracked so
// benches can print SciNet-style link monitors.
#pragma once

#include <functional>
#include <string>

#include "common/timeseries.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace mgfs::sim {

class Pipe {
 public:
  Pipe(Simulator& sim, BytesPerSec rate, Time latency, std::string name = {});

  /// Enqueue a transfer; `done` fires at delivery time (serialization done
  /// + latency). Zero-byte transfers still pay the latency.
  void transfer(Bytes n, Callback done);

  /// Seconds a transfer enqueued now would wait before starting to
  /// serialize (current queue backlog).
  Time queue_delay() const;

  BytesPerSec rate() const { return rate_; }
  Time latency() const { return latency_; }
  const std::string& name() const { return name_; }
  Bytes bytes_moved() const { return bytes_moved_; }

  /// Fraction of [0, now] the pipe spent serializing.
  double utilization() const;

  /// Attach a meter that receives (serialization-finish-time, bytes) for
  /// every transfer — the hook benches use to plot per-link bandwidth.
  void set_meter(RateMeter* meter) { meter_ = meter; }

  /// Administrative state: a down pipe drops transfers (done is never
  /// called). Used for link-failure injection.
  void set_up(bool up) { up_ = up; }
  bool up() const { return up_; }
  Bytes dropped_bytes() const { return dropped_; }

 private:
  Simulator& sim_;
  BytesPerSec rate_;
  Time latency_;
  std::string name_;
  Time busy_until_ = 0.0;
  Bytes bytes_moved_ = 0;
  Bytes dropped_ = 0;
  double busy_time_ = 0.0;
  RateMeter* meter_ = nullptr;
  bool up_ = true;
};

}  // namespace mgfs::sim
