// SerialResource: a unit-capacity resource consumed for a caller-
// specified duration, FIFO. Models a CPU doing per-byte work (software
// encryption, checksumming): concurrent requests queue instead of
// overlapping, unlike Simulator::after.
#pragma once

#include <algorithm>
#include <string>

#include "sim/simulator.hpp"

namespace mgfs::sim {

class SerialResource {
 public:
  explicit SerialResource(Simulator& sim, std::string name = {})
      : sim_(sim), name_(std::move(name)) {}

  /// Hold the resource for `cost` seconds after any queued work, then
  /// run `done`. A zero cost completes on the next event round without
  /// queueing.
  void acquire(Time cost, Callback done) {
    if (cost <= 0.0) {
      sim_.defer(std::move(done));
      return;
    }
    const Time start = std::max(sim_.now(), busy_until_);
    busy_until_ = start + cost;
    busy_time_ += cost;
    sim_.at(busy_until_, std::move(done));
  }

  Time queue_delay() const { return std::max(0.0, busy_until_ - sim_.now()); }
  double busy_seconds() const { return busy_time_; }
  const std::string& name() const { return name_; }

 private:
  Simulator& sim_;
  std::string name_;
  Time busy_until_ = 0.0;
  double busy_time_ = 0.0;
};

}  // namespace mgfs::sim
