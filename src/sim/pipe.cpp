#include "sim/pipe.hpp"

#include <algorithm>
#include <utility>

#include "common/result.hpp"

namespace mgfs::sim {

Pipe::Pipe(Simulator& sim, BytesPerSec rate, Time latency, std::string name)
    : sim_(sim), rate_(rate), latency_(latency), name_(std::move(name)) {
  MGFS_ASSERT(rate > 0, "pipe rate must be positive");
  MGFS_ASSERT(latency >= 0, "pipe latency must be non-negative");
}

void Pipe::transfer(Bytes n, Callback done) {
  if (!up_) {
    dropped_ += n;
    return;  // black hole; callers recover via timeout/failover paths
  }
  const Time start = std::max(sim_.now(), busy_until_);
  const Time ser_time = static_cast<double>(n) / rate_;
  const Time ser_done = start + ser_time;
  busy_until_ = ser_done;
  busy_time_ += ser_time;
  bytes_moved_ += n;
  if (meter_ != nullptr) meter_->note(ser_done, n);
  sim_.at(ser_done + latency_, std::move(done));
}

Time Pipe::queue_delay() const {
  return std::max(0.0, busy_until_ - sim_.now());
}

double Pipe::utilization() const {
  const Time t = sim_.now();
  if (t <= 0) return 0.0;
  // busy_time_ counts scheduled serialization, which may extend past now;
  // clamp so the answer stays in [0, 1].
  return std::min(1.0, busy_time_ / t);
}

}  // namespace mgfs::sim
