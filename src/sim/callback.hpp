// Small-buffer-optimized callable for event callbacks.
//
// The simulator schedules tens of millions of continuations per run;
// with std::function every capture larger than the implementation's
// tiny inline buffer (16 bytes on libstdc++) costs a heap allocation
// on schedule and a free on fire. Almost all MGFS captures are a
// `this` pointer plus a few words, so InlineCallback carries 48 bytes
// of inline storage — enough for every hot-path capture in the tree —
// and only falls back to the heap beyond that. Semantics mirror
// std::function<void()>: copyable (callables must be copy-
// constructible), nullptr-comparable, empty() testable via bool.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mgfs::sim {

class InlineCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = inline_vt<Fn>();
    } else {
      heap_ = new Fn(std::forward<F>(f));
      vt_ = heap_vt<Fn>();
    }
  }

  InlineCallback(InlineCallback&& o) noexcept { move_from(o); }
  InlineCallback(const InlineCallback& o) { copy_from(o); }

  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineCallback& operator=(const InlineCallback& o) {
    if (this != &o) {
      InlineCallback tmp(o);
      reset();
      move_from(tmp);
    }
    return *this;
  }
  InlineCallback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~InlineCallback() { reset(); }

  void operator()() const { vt_->invoke(const_cast<InlineCallback*>(this)); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }
  friend bool operator==(const InlineCallback& c, std::nullptr_t) noexcept {
    return !static_cast<bool>(c);
  }
  friend bool operator!=(const InlineCallback& c, std::nullptr_t) noexcept {
    return static_cast<bool>(c);
  }

 private:
  struct VTable {
    void (*invoke)(InlineCallback*);
    void (*move)(InlineCallback* dst, InlineCallback* src) noexcept;
    void (*copy)(InlineCallback* dst, const InlineCallback* src);
    void (*destroy)(InlineCallback*) noexcept;
  };

  template <typename Fn>
  static Fn* inline_obj(InlineCallback* c) noexcept {
    return std::launder(reinterpret_cast<Fn*>(c->buf_));
  }

  template <typename Fn>
  static void invoke_inline(InlineCallback* c) {
    (*inline_obj<Fn>(c))();
  }
  template <typename Fn>
  static void move_inline(InlineCallback* dst, InlineCallback* src) noexcept {
    ::new (static_cast<void*>(dst->buf_)) Fn(std::move(*inline_obj<Fn>(src)));
    inline_obj<Fn>(src)->~Fn();
  }
  template <typename Fn>
  static void copy_inline(InlineCallback* dst, const InlineCallback* src) {
    ::new (static_cast<void*>(dst->buf_))
        Fn(*inline_obj<Fn>(const_cast<InlineCallback*>(src)));
  }
  template <typename Fn>
  static void destroy_inline(InlineCallback* c) noexcept {
    inline_obj<Fn>(c)->~Fn();
  }
  template <typename Fn>
  static const VTable* inline_vt() {
    static constexpr VTable vt = {&invoke_inline<Fn>, &move_inline<Fn>,
                                  &copy_inline<Fn>, &destroy_inline<Fn>};
    return &vt;
  }

  template <typename Fn>
  static void invoke_heap(InlineCallback* c) {
    (*static_cast<Fn*>(c->heap_))();
  }
  template <typename Fn>
  static void move_heap(InlineCallback* dst, InlineCallback* src) noexcept {
    dst->heap_ = src->heap_;
    src->heap_ = nullptr;
  }
  template <typename Fn>
  static void copy_heap(InlineCallback* dst, const InlineCallback* src) {
    dst->heap_ = new Fn(*static_cast<const Fn*>(src->heap_));
  }
  template <typename Fn>
  static void destroy_heap(InlineCallback* c) noexcept {
    delete static_cast<Fn*>(c->heap_);
  }
  template <typename Fn>
  static const VTable* heap_vt() {
    static constexpr VTable vt = {&invoke_heap<Fn>, &move_heap<Fn>,
                                  &copy_heap<Fn>, &destroy_heap<Fn>};
    return &vt;
  }

  void move_from(InlineCallback& o) noexcept {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->move(this, &o);
      o.vt_ = nullptr;
    }
  }
  void copy_from(const InlineCallback& o) {
    if (o.vt_ != nullptr) {
      o.vt_->copy(this, &o);
      vt_ = o.vt_;
    }
  }
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(this);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void* heap_;
  };
};

}  // namespace mgfs::sim
