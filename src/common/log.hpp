// Leveled logging. Off by default in benches/tests; components log through
// a shared sink so simulation traces can be captured deterministically.
#pragma once

#include <sstream>
#include <string>

namespace mgfs {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel lvl) { level_ = lvl; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel lvl) const { return lvl >= level_; }

  /// Redirect output to an internal buffer (tests) or back to stderr.
  void capture(bool on);
  std::string captured() const { return buffer_.str(); }
  void clear_captured() { buffer_.str({}); }

  void write(LogLevel lvl, const std::string& component, const std::string& msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::off;
  bool capture_ = false;
  std::ostringstream buffer_;
};

#define MGFS_LOG(lvl, component, expr)                                   \
  do {                                                                   \
    if (::mgfs::Logger::instance().enabled(lvl)) {                       \
      std::ostringstream mgfs_log_os;                                    \
      mgfs_log_os << expr;                                               \
      ::mgfs::Logger::instance().write(lvl, component, mgfs_log_os.str()); \
    }                                                                    \
  } while (0)

#define MGFS_DEBUG(component, expr) MGFS_LOG(::mgfs::LogLevel::debug, component, expr)
#define MGFS_INFO(component, expr) MGFS_LOG(::mgfs::LogLevel::info, component, expr)
#define MGFS_WARN(component, expr) MGFS_LOG(::mgfs::LogLevel::warn, component, expr)

}  // namespace mgfs
