// Latency histogram with fixed-width bins plus summary statistics.
// Used for HSM recall latency, auth handshake latency, and token
// round-trip distributions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mgfs {

class Histogram {
 public:
  /// Bins of `bin_width` covering [0, bin_width * bin_count); values beyond
  /// land in an overflow bucket.
  Histogram(double bin_width, std::size_t bin_count, std::string name = {});

  void add(double v);

  /// Fold another histogram into this one (e.g. per-client latency
  /// distributions into a cluster-wide one). Requires identical bin
  /// geometry; the other's overflow stays overflow here.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double mean() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return max_; }
  /// Approximate quantile from bin midpoints (exact for min/max ends).
  double quantile(double q) const;
  std::uint64_t overflow() const { return overflow_; }

  void print(std::ostream& os, const std::string& unit) const;

 private:
  double bin_width_;
  std::string name_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mgfs
