#include "common/histogram.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "common/result.hpp"

namespace mgfs {

Histogram::Histogram(double bin_width, std::size_t bin_count, std::string name)
    : bin_width_(bin_width), name_(std::move(name)), bins_(bin_count, 0) {
  MGFS_ASSERT(bin_width > 0 && bin_count > 0, "bad histogram shape");
}

void Histogram::add(double v) {
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
  if (v < 0) {
    ++overflow_;  // negative values are unexpected; count, don't crash
    return;
  }
  const auto idx = static_cast<std::size_t>(v / bin_width_);
  if (idx >= bins_.size()) {
    ++overflow_;
  } else {
    ++bins_[idx];
  }
}

void Histogram::merge(const Histogram& other) {
  MGFS_ASSERT(bin_width_ == other.bin_width_ &&
                  bins_.size() == other.bins_.size(),
              "histogram merge shape mismatch");
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  overflow_ += other.overflow_;
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    seen += bins_[i];
    if (seen > target) return (static_cast<double>(i) + 0.5) * bin_width_;
  }
  return max_;
}

void Histogram::print(std::ostream& os, const std::string& unit) const {
  os << (name_.empty() ? "histogram" : name_) << ": n=" << count_
     << std::fixed << std::setprecision(3) << " mean=" << mean() << unit
     << " p50=" << quantile(0.5) << unit << " p95=" << quantile(0.95) << unit
     << " p99=" << quantile(0.99) << unit << " max=" << max_ << unit;
  if (overflow_ > 0) os << " overflow=" << overflow_;
  os << "\n";
  os.unsetf(std::ios::fixed);
}

}  // namespace mgfs
