#include "common/log.hpp"

#include <cstdio>

namespace mgfs {
namespace {
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::capture(bool on) {
  capture_ = on;
  if (on) buffer_.str({});
}

void Logger::write(LogLevel lvl, const std::string& component,
                   const std::string& msg) {
  if (capture_) {
    buffer_ << "[" << level_name(lvl) << "] " << component << ": " << msg
            << "\n";
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", level_name(lvl), component.c_str(),
                 msg.c_str());
  }
}

}  // namespace mgfs
