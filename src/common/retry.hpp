// RetryPolicy: bounded exponential backoff with deterministic jitter.
//
// The recovery half of the fault model (DESIGN.md "Failure model"):
// callers facing a transient error — an unreachable node, an RPC
// deadline expiry — re-issue the operation after an exponentially
// growing delay. Jitter is drawn from the caller's seeded Rng so two
// runs with the same seed back off identically; there is no wall clock
// and no global randomness anywhere in the policy.
#pragma once

#include <algorithm>

#include "common/result.hpp"
#include "common/rng.hpp"

namespace mgfs {

struct RetryPolicy {
  int max_attempts = 4;      // total tries, including the first
  double base = 0.010;       // backoff before the first retry (seconds)
  double multiplier = 2.0;   // growth per retry
  double max_backoff = 1.0;  // backoff ceiling (seconds)
  double jitter = 0.5;       // +/- fraction of the nominal delay

  /// Is a `attempt`-th failure (0-based) final under this policy?
  bool exhausted(int attempt) const { return attempt + 1 >= max_attempts; }

  /// Delay before retry number `attempt` + 1 (attempt is 0-based).
  double backoff(int attempt, Rng& rng) const {
    double d = base;
    for (int i = 0; i < attempt; ++i) d *= multiplier;
    d = std::min(d, max_backoff);
    if (jitter > 0.0) d *= rng.uniform(1.0 - jitter, 1.0 + jitter);
    return std::max(d, 0.0);
  }
};

/// Errors worth re-issuing: the peer (or path) may heal. Everything
/// else — permission, namespace, media loss — is final.
inline bool retryable(Errc e) {
  return e == Errc::unavailable || e == Errc::timed_out || e == Errc::gated;
}

}  // namespace mgfs
