// Byte-count and bandwidth unit helpers shared across all MGFS modules.
//
// Conventions used throughout the codebase:
//   * sizes are in bytes, held in std::uint64_t (Bytes alias)
//   * rates are in bytes per second, held in double (BytesPerSec alias)
//   * simulated time is in seconds, held in double (see sim/time.hpp)
//
// Network hardware in the paper is quoted in decimal bits per second
// (10 GbE = 1.25e9 bytes/s); disk sizes in decimal gigabytes. We follow
// the same convention: the *_gb / gbps helpers are decimal, the KiB/MiB/
// GiB constants are binary (used for file-system block sizes).
#pragma once

#include <cstdint>

namespace mgfs {

using Bytes = std::uint64_t;
using BytesPerSec = double;

inline constexpr Bytes KiB = 1024ULL;
inline constexpr Bytes MiB = 1024ULL * KiB;
inline constexpr Bytes GiB = 1024ULL * MiB;
inline constexpr Bytes TiB = 1024ULL * GiB;

inline constexpr Bytes KB = 1000ULL;
inline constexpr Bytes MB = 1000ULL * KB;
inline constexpr Bytes GB = 1000ULL * MB;
inline constexpr Bytes TB = 1000ULL * GB;

/// Decimal gigabits/sec -> bytes/sec (networking convention: 10 GbE = 10e9 b/s).
constexpr BytesPerSec gbps(double g) { return g * 1e9 / 8.0; }

/// Decimal megabits/sec -> bytes/sec.
constexpr BytesPerSec mbps(double m) { return m * 1e6 / 8.0; }

/// Decimal megabytes/sec -> bytes/sec.
constexpr BytesPerSec mB_per_s(double m) { return m * 1e6; }

/// Bytes/sec -> decimal megabytes/sec (the unit the paper's figures use).
constexpr double to_MBps(BytesPerSec r) { return r / 1e6; }

/// Bytes/sec -> decimal gigabits/sec (the unit of the SC'03/'04 figures).
constexpr double to_gbps(BytesPerSec r) { return r * 8.0 / 1e9; }

/// Integer ceiling division; used everywhere block counts are derived.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace mgfs
