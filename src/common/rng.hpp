// Deterministic pseudo-random number generation.
//
// Every stochastic component in MGFS (disk seek jitter, workload think
// times, prime generation for toy-RSA, ...) draws from an explicitly
// seeded Rng so simulation runs are bit-reproducible: same seed, same
// event order, same printed series. xoshiro256** is used for its speed
// and statistical quality; <random> engines are avoided because their
// output is not specified identically across standard-library versions.
#pragma once

#include <cstdint>

namespace mgfs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, n) — n must be > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed with given mean (> 0).
  double exponential(double mean);

  /// Normal via Box–Muller (mean, stddev).
  double normal(double mean, double stddev);

  /// Bernoulli with probability p.
  bool chance(double p);

  /// Derive an independent child stream (for per-component rngs).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mgfs
