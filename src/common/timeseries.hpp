// Time-series recording and printing.
//
// Every figure in the paper is either "throughput vs. time" (Figs. 2, 5, 8)
// or "throughput vs. node count" (Fig. 11). TimeSeries is the common
// container benches fill and print; RateMeter converts raw byte
// completions into a binned MB/s series like SciNet's per-link monitors
// did on the SC'04 show floor.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mgfs {

struct SeriesPoint {
  double x = 0.0;  // seconds, or node count
  double y = 0.0;  // MB/s, Gb/s, ...
};

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(double x, double y) { pts_.push_back({x, y}); }
  const std::vector<SeriesPoint>& points() const { return pts_; }
  const std::string& name() const { return name_; }
  bool empty() const { return pts_.empty(); }
  std::size_t size() const { return pts_.size(); }

  double max_y() const;
  double min_y() const;
  double mean_y() const;
  /// Mean of y over points with x in [lo, hi] — used for "sustained rate"
  /// claims that exclude ramp-up.
  double mean_y_between(double lo, double hi) const;

  /// Render as a two-column table to `os`.
  void print(std::ostream& os, const std::string& xlabel,
             const std::string& ylabel) const;

  /// Render as CSV (header = xlabel,ylabel).
  void print_csv(std::ostream& os, const std::string& xlabel,
                 const std::string& ylabel) const;

 private:
  std::string name_;
  std::vector<SeriesPoint> pts_;
};

/// Accumulates byte completions and bins them into a rate series.
/// `note(t, bytes)` may be called in any order within a bin; `finish()`
/// flushes the trailing partial bin.
class RateMeter {
 public:
  explicit RateMeter(double bin_seconds = 1.0, std::string name = {});

  void note(double t, std::uint64_t bytes);
  /// Total bytes observed so far.
  std::uint64_t total_bytes() const { return total_; }
  /// Flush and return the binned series in MB/s (decimal).
  TimeSeries series_MBps() const;
  double bin_seconds() const { return bin_; }

 private:
  double bin_;
  std::string name_;
  std::vector<double> bins_;  // bytes per bin
  std::uint64_t total_ = 0;
};

/// Print several series side by side (shared x axis by index) — used for
/// the SC'04 three-link + aggregate figure.
void print_multi(std::ostream& os, const std::string& xlabel,
                 const std::vector<const TimeSeries*>& series);

/// ASCII sparkline of a series (so the bench output visually echoes the
/// paper's plots in a terminal). Width columns, scaled to max_y.
std::string sparkline(const TimeSeries& s, std::size_t width = 72);

}  // namespace mgfs
