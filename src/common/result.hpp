// Minimal Result<T> error-handling vocabulary type (std::expected is not
// available in the target toolchain's libstdc++ for all build modes, so we
// carry a small local equivalent).
//
// MGFS uses Result for *expected, recoverable* failures: permission denied,
// unknown path, unauthorized cluster, disk full. Programming errors are
// asserted (MGFS_ASSERT) instead.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace mgfs {

#define MGFS_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MGFS_ASSERT failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, msg);                                          \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Error codes cover the user-visible failure surface of the library.
enum class Errc {
  ok = 0,
  not_found,
  exists,
  permission_denied,
  not_authorized,      // multi-cluster: cluster not granted by mmauth
  not_authenticated,   // handshake failed / bad signature
  read_only,           // FS exported read-only to this cluster
  no_space,
  io_error,            // disk / RAID failure surfaced to caller
  unavailable,         // node down / no NSD server reachable
  invalid_argument,
  not_a_directory,
  is_a_directory,
  not_empty,
  stale,               // configuration generation mismatch
  timed_out,
  gated,               // NSD write gate paused the I/O (manager takeover
                       // rebuild in flight) — requeue, server is healthy
};

/// Human-readable code name (stable; used in logs and test assertions).
constexpr const char* errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::exists: return "exists";
    case Errc::permission_denied: return "permission_denied";
    case Errc::not_authorized: return "not_authorized";
    case Errc::not_authenticated: return "not_authenticated";
    case Errc::read_only: return "read_only";
    case Errc::no_space: return "no_space";
    case Errc::io_error: return "io_error";
    case Errc::unavailable: return "unavailable";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_a_directory: return "not_a_directory";
    case Errc::is_a_directory: return "is_a_directory";
    case Errc::not_empty: return "not_empty";
    case Errc::stale: return "stale";
    case Errc::timed_out: return "timed_out";
    case Errc::gated: return "gated";
  }
  return "unknown";
}

struct Error {
  Errc code = Errc::ok;
  std::string detail;

  std::string to_string() const {
    std::string s = errc_name(code);
    if (!detail.empty()) {
      s += ": ";
      s += detail;
    }
    return s;
  }
};

inline Error err(Errc c, std::string detail = {}) {
  return Error{c, std::move(detail)};
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Error e) : v_(std::move(e)) {}               // NOLINT(google-explicit-constructor)
  Result(Errc c, std::string detail = {}) : v_(Error{c, std::move(detail)}) {}

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    MGFS_ASSERT(ok(), "Result::value() on error");
    return std::get<T>(v_);
  }
  T& value() & {
    MGFS_ASSERT(ok(), "Result::value() on error");
    return std::get<T>(v_);
  }
  T&& take() && {
    MGFS_ASSERT(ok(), "Result::take() on error");
    return std::get<T>(std::move(v_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    MGFS_ASSERT(!ok(), "Result::error() on success");
    return std::get<Error>(v_);
  }
  Errc code() const { return ok() ? Errc::ok : error().code; }

 private:
  std::variant<T, Error> v_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error e) : e_(std::move(e)) {}               // NOLINT(google-explicit-constructor)
  Status(Errc c, std::string detail = {}) : e_(Error{c, std::move(detail)}) {}

  static Status ok_status() { return Status{}; }
  bool ok() const { return e_.code == Errc::ok; }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return e_; }
  Errc code() const { return e_.code; }
  std::string to_string() const { return ok() ? "ok" : e_.to_string(); }

 private:
  Error e_{};
};

}  // namespace mgfs
