#include "common/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/result.hpp"

namespace mgfs {

double TimeSeries::max_y() const {
  double m = 0.0;
  for (const auto& p : pts_) m = std::max(m, p.y);
  return m;
}

double TimeSeries::min_y() const {
  if (pts_.empty()) return 0.0;
  double m = pts_.front().y;
  for (const auto& p : pts_) m = std::min(m, p.y);
  return m;
}

double TimeSeries::mean_y() const {
  if (pts_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& p : pts_) s += p.y;
  return s / static_cast<double>(pts_.size());
}

double TimeSeries::mean_y_between(double lo, double hi) const {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& p : pts_) {
    if (p.x >= lo && p.x <= hi) {
      s += p.y;
      ++n;
    }
  }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

void TimeSeries::print(std::ostream& os, const std::string& xlabel,
                       const std::string& ylabel) const {
  os << std::setw(12) << xlabel << "  " << std::setw(12) << ylabel << "\n";
  os << std::fixed << std::setprecision(2);
  for (const auto& p : pts_) {
    os << std::setw(12) << p.x << "  " << std::setw(12) << p.y << "\n";
  }
  os.unsetf(std::ios::fixed);
}

void TimeSeries::print_csv(std::ostream& os, const std::string& xlabel,
                           const std::string& ylabel) const {
  os << xlabel << "," << ylabel << "\n";
  for (const auto& p : pts_) os << p.x << "," << p.y << "\n";
}

RateMeter::RateMeter(double bin_seconds, std::string name)
    : bin_(bin_seconds), name_(std::move(name)) {
  MGFS_ASSERT(bin_seconds > 0, "RateMeter bin must be positive");
}

void RateMeter::note(double t, std::uint64_t bytes) {
  MGFS_ASSERT(t >= 0, "RateMeter time must be non-negative");
  const auto idx = static_cast<std::size_t>(t / bin_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0.0);
  bins_[idx] += static_cast<double>(bytes);
  total_ += bytes;
}

TimeSeries RateMeter::series_MBps() const {
  TimeSeries s(name_);
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    // Report the bin's *center* so plots line up regardless of bin width.
    s.add((static_cast<double>(i) + 0.5) * bin_, bins_[i] / bin_ / 1e6);
  }
  return s;
}

void print_multi(std::ostream& os, const std::string& xlabel,
                 const std::vector<const TimeSeries*>& series) {
  os << std::setw(12) << xlabel;
  std::size_t rows = 0;
  for (const auto* s : series) {
    os << "  " << std::setw(14) << (s->name().empty() ? "series" : s->name());
    rows = std::max(rows, s->size());
  }
  os << "\n" << std::fixed << std::setprecision(2);
  for (std::size_t r = 0; r < rows; ++r) {
    double x = 0;
    for (const auto* s : series) {
      if (r < s->size()) {
        x = s->points()[r].x;
        break;
      }
    }
    os << std::setw(12) << x;
    for (const auto* s : series) {
      if (r < s->size()) {
        os << "  " << std::setw(14) << s->points()[r].y;
      } else {
        os << "  " << std::setw(14) << "-";
      }
    }
    os << "\n";
  }
  os.unsetf(std::ios::fixed);
}

std::string sparkline(const TimeSeries& s, std::size_t width) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#", "@"};
  constexpr std::size_t nlevels = sizeof(levels) / sizeof(levels[0]);
  if (s.empty() || width == 0) return {};
  const double maxy = s.max_y();
  if (maxy <= 0) return std::string(width, ' ');
  // Downsample by averaging points into `width` buckets.
  std::string out;
  const std::size_t n = s.size();
  for (std::size_t c = 0; c < width; ++c) {
    const std::size_t lo = c * n / width;
    std::size_t hi = (c + 1) * n / width;
    if (hi <= lo) hi = lo + 1;
    double acc = 0;
    for (std::size_t i = lo; i < hi && i < n; ++i) acc += s.points()[i].y;
    acc /= static_cast<double>(hi - lo);
    auto lvl = static_cast<std::size_t>(std::round(acc / maxy * (nlevels - 1)));
    lvl = std::min(lvl, nlevels - 1);
    out += levels[lvl];
  }
  return out;
}

}  // namespace mgfs
