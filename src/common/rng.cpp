#include "common/rng.hpp"

#include <cmath>

#include "common/result.hpp"

namespace mgfs {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit seed.
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  MGFS_ASSERT(n > 0, "Rng::below(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  MGFS_ASSERT(lo <= hi, "Rng::range lo > hi");
  return lo + below(hi - lo + 1);
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::exponential(double mean) {
  MGFS_ASSERT(mean > 0, "exponential mean <= 0");
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace mgfs
