#include "fault/injector.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/log.hpp"
#include "gpfs/cluster.hpp"

namespace mgfs::fault {

namespace {
/// Absolute schedule time -> relative delay; an `at` already in the
/// past fires immediately instead of asserting on a negative delay.
sim::Time delay_until(sim::Simulator& sim, sim::Time at) {
  return std::max(0.0, at - sim.now());
}
}  // namespace

FaultInjector::FaultInjector(net::Network& net, Rng rng)
    : net_(net), rng_(rng) {}

// --- scripted one-shots ------------------------------------------------

void FaultInjector::schedule_link_cut(sim::Time at, net::NodeId a,
                                      net::NodeId b, sim::Time duration) {
  net_.simulator().after(delay_until(net_.simulator(), at),
                         [this, a, b, duration] { cut_link_now(a, b, duration); });
}

void FaultInjector::schedule_node_crash(sim::Time at, net::NodeId n,
                                        sim::Time duration) {
  net_.simulator().after(delay_until(net_.simulator(), at),
                         [this, n, duration] { crash_node_now(n, duration); });
}

void FaultInjector::schedule_blackhole(sim::Time at, net::NodeId n,
                                       sim::Time duration) {
  sim::Simulator& sim = net_.simulator();
  sim.after(delay_until(sim, at), [this, n, duration] {
    ++blackholes_;
    MGFS_WARN("fault", "node " << n.v << " blackholed for " << duration
                               << "s");
    net_.set_node_blackholed(n, true);
    net_.simulator().after(duration, [this, n] {
      net_.set_node_blackholed(n, false);
      MGFS_INFO("fault", "node " << n.v << " un-blackholed");
    });
  });
}

void FaultInjector::schedule_fail_slow(sim::Time at, gpfs::NsdServer& srv,
                                       double factor, sim::Time duration) {
  sim::Simulator& sim = net_.simulator();
  gpfs::NsdServer* s = &srv;
  sim.after(delay_until(sim, at), [this, s, factor, duration] {
    ++fail_slows_;
    MGFS_WARN("fault", "NSD server " << s->name() << " fail-slow x" << factor
                                     << " for " << duration << "s");
    s->set_slow_factor(factor);
    net_.simulator().after(duration, [s] { s->set_slow_factor(1.0); });
  });
}

void FaultInjector::schedule_crash_manager(sim::Time at, gpfs::FileSystem& fs,
                                           sim::Time duration) {
  sim::Simulator& sim = net_.simulator();
  gpfs::FileSystem* fsp = &fs;
  sim.after(delay_until(sim, at), [this, fsp, duration] {
    // Resolve the manager node at fire time: an earlier takeover may
    // already have moved the role.
    const net::NodeId mgr = fsp->manager_node();
    ++manager_crashes_;
    MGFS_WARN("fault", "crashing manager node " << mgr.v << " of "
                                                << fsp->name() << " for "
                                                << duration << "s");
    crash_node_now(mgr, duration);
  });
}

void FaultInjector::schedule_site_outage(sim::Time at,
                                         std::vector<net::NodeId> site,
                                         sim::Time duration) {
  sim::Simulator& sim = net_.simulator();
  sim.after(delay_until(sim, at),
            [this, site = std::move(site), duration] {
    ++site_outages_;
    MGFS_WARN("fault", "site outage: " << site.size() << " nodes dark for "
                                       << duration << "s");
    for (const net::NodeId n : site) net_.set_node_blackholed(n, true);
    net_.simulator().after(duration, [this, site] {
      for (const net::NodeId n : site) net_.set_node_blackholed(n, false);
      MGFS_INFO("fault", "site outage healed (" << site.size() << " nodes)");
    });
  });
}

void FaultInjector::schedule_nsd_loss(sim::Time at, gpfs::FileSystem& fs,
                                      std::uint32_t nsd_id) {
  sim::Simulator& sim = net_.simulator();
  gpfs::FileSystem* fsp = &fs;
  sim.after(delay_until(sim, at), [this, fsp, nsd_id] {
    ++nsd_losses_;
    MGFS_WARN("fault", "NSD " << nsd_id << " of " << fsp->name()
                              << " lost permanently (media failure)");
    // Media gone: every read/write against the device fails immediately
    // with io_error (non-retryable — clients redirect to replicas).
    fsp->nsd(nsd_id).device->set_failed(true);
    // And the allocator stops placing new blocks (or replica copies)
    // there. No repair event follows: the operator runs evacuate_nsd.
    fsp->set_nsd_down(nsd_id, true);
  });
}

// --- fault bodies ------------------------------------------------------

void FaultInjector::cut_link_now(net::NodeId a, net::NodeId b,
                                 sim::Time duration) {
  ++link_cuts_;
  MGFS_WARN("fault", "link " << a.v << "<->" << b.v << " cut for " << duration
                             << "s");
  net_.set_link_up(a, b, false);
  net_.simulator().after(duration, [this, a, b] {
    net_.set_link_up(a, b, true);
    MGFS_INFO("fault", "link " << a.v << "<->" << b.v << " restored");
  });
}

void FaultInjector::crash_node_now(net::NodeId n, sim::Time duration) {
  ++node_crashes_;
  MGFS_WARN("fault", "node " << n.v << " crashed for " << duration << "s");
  net_.set_node_up(n, false);
  net_.simulator().after(duration, [this, n] {
    net_.set_node_up(n, true);
    // Restart semantics: the daemon comes back and re-dials, so pooled
    // connections that failed while it was down are usable again.
    if (pool_ != nullptr) pool_->reset_node(n);
    // The restarted daemon lost its volatile state: expel the dead
    // incarnation and re-admit it under a fresh lease epoch.
    if (cluster_ != nullptr) cluster_->on_node_restart(n);
    MGFS_INFO("fault", "node " << n.v << " restarted");
  });
}

// --- stochastic processes ----------------------------------------------

void FaultInjector::flap_link(net::NodeId a, net::NodeId b, sim::Time mttf,
                              sim::Time mttr, sim::Time start,
                              sim::Time until) {
  MGFS_ASSERT(mttf > 0.0 && mttr > 0.0, "MTTF/MTTR must be positive");
  net_.simulator().after(delay_until(net_.simulator(), start),
                         [this, a, b, mttf, mttr, until] {
                           flap_once(a, b, mttf, mttr, until);
                         });
}

void FaultInjector::flap_once(net::NodeId a, net::NodeId b, sim::Time mttf,
                              sim::Time mttr, sim::Time until) {
  const sim::Time ttf = rng_.exponential(mttf);
  const sim::Time outage = rng_.exponential(mttr);
  net_.simulator().after(ttf, [this, a, b, mttf, mttr, outage, until] {
    if (net_.simulator().now() > until) return;  // schedule expired
    cut_link_now(a, b, outage);
    // Next failure is drawn after this outage heals.
    net_.simulator().after(outage, [this, a, b, mttf, mttr, until] {
      flap_once(a, b, mttf, mttr, until);
    });
  });
}

void FaultInjector::churn_node(net::NodeId n, sim::Time mttf, sim::Time mttr,
                               sim::Time start, sim::Time until) {
  MGFS_ASSERT(mttf > 0.0 && mttr > 0.0, "MTTF/MTTR must be positive");
  net_.simulator().after(delay_until(net_.simulator(), start),
                         [this, n, mttf, mttr, until] {
                           churn_once(n, mttf, mttr, until);
                         });
}

void FaultInjector::churn_once(net::NodeId n, sim::Time mttf, sim::Time mttr,
                               sim::Time until) {
  const sim::Time ttf = rng_.exponential(mttf);
  const sim::Time outage = rng_.exponential(mttr);
  net_.simulator().after(ttf, [this, n, mttf, mttr, outage, until] {
    if (net_.simulator().now() > until) return;
    crash_node_now(n, outage);
    net_.simulator().after(outage, [this, n, mttf, mttr, until] {
      churn_once(n, mttf, mttr, until);
    });
  });
}

std::string FaultInjector::report() const {
  std::ostringstream os;
  os << "fault injector report\n"
     << "  link_cuts    " << link_cuts_ << "\n"
     << "  node_crashes " << node_crashes_ << "\n"
     << "  blackholes   " << blackholes_ << "\n"
     << "  fail_slows   " << fail_slows_ << "\n"
     << "  mgr_crashes  " << manager_crashes_ << "\n"
     << "  site_outages " << site_outages_ << "\n"
     << "  nsd_losses   " << nsd_losses_ << "\n";
  return os.str();
}

}  // namespace mgfs::fault
