// FlakyDevice: latent media errors for the fault engine.
//
// Wraps any BlockDevice and fails a seeded fraction of operations with
// Errc::io_error before they reach the inner device — the latent sector
// error / controller hiccup class of fault. Errors here are FINAL from
// the client's point of view (retrying a dead sector does not help;
// see retryable() in common/retry.hpp), which is exactly what makes
// them worth injecting: they must surface, not be retried into
// oblivion.
#pragma once

#include "common/rng.hpp"
#include "storage/block_device.hpp"

namespace mgfs::fault {

class FlakyDevice final : public storage::BlockDevice {
 public:
  /// Fail each op independently with probability `error_rate`, drawn
  /// from `rng` at issue time (deterministic given seed + op order).
  FlakyDevice(sim::Simulator& sim, storage::BlockDevice& inner, Rng rng,
              double error_rate)
      : sim_(sim), inner_(inner), rng_(rng), error_rate_(error_rate) {
    MGFS_ASSERT(error_rate >= 0.0 && error_rate <= 1.0,
                "error rate must be a probability");
  }

  void io(Bytes offset, Bytes len, bool write,
          storage::IoCallback done) override {
    if (rng_.uniform() < error_rate_) {
      ++errors_injected_;
      sim_.defer([done = std::move(done)] {
        done(Status(Errc::io_error, "injected latent media error"));
      });
      return;
    }
    inner_.io(offset, len, write, std::move(done));
  }

  Bytes capacity() const override { return inner_.capacity(); }

  std::uint64_t errors_injected() const { return errors_injected_; }

 private:
  sim::Simulator& sim_;
  storage::BlockDevice& inner_;
  Rng rng_;
  double error_rate_;
  std::uint64_t errors_injected_ = 0;
};

}  // namespace mgfs::fault
