// FaultInjector: deterministic, seed-driven failure schedules.
//
// The robustness half of the simulator: production WAN file systems die
// from the faults the demos never showed — flapping transatlantic
// links, crashed NSD servers, and the gray failures (silent blackholes,
// fail-slow servers, latent media errors) the recovery machinery in
// gpfs/ exists for. The injector turns a seed plus a schedule into
// simulator events, so a chaos run is exactly as reproducible as a
// clean one: same seed, same faults, same byte-identical mmpmon.
//
// Two idioms:
//   * scripted one-shots — schedule_link_cut(at, a, b, for) and
//     friends; exact times, exact targets. Tests use these.
//   * stochastic processes — flap_link / churn_node draw failure and
//     repair intervals from exponential distributions (MTTF / MTTR)
//     on the injector's own Rng stream. Soak benches use these.
//
// Every injected fault schedules its own repair, even past `until`, so
// when the schedule ends the system is healed — a run that finishes
// degraded is a recovery bug, not an injector artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gpfs/nsd.hpp"
#include "gpfs/rpc.hpp"
#include "net/network.hpp"

namespace mgfs::gpfs {
class Cluster;
class FileSystem;
}  // namespace mgfs::gpfs

namespace mgfs::fault {

class FaultInjector {
 public:
  FaultInjector(net::Network& net, Rng rng);

  /// Optional: when a crashed/churned node restarts, also reset the
  /// broken pooled connections touching it, like a reconnecting daemon.
  void watch_pool(gpfs::ConnectionPool& pool) { pool_ = &pool; }
  /// Optional: notify the cluster on node restart so clients mounted on
  /// the node are expelled (journal replay, token reclaim) and re-admit
  /// themselves under a fresh lease epoch.
  void watch_cluster(gpfs::Cluster& cluster) { cluster_ = &cluster; }

  // --- scripted one-shots -----------------------------------------------
  /// Cut the a<->b link at `at`; restore it `duration` later.
  void schedule_link_cut(sim::Time at, net::NodeId a, net::NodeId b,
                         sim::Time duration);
  /// Crash node `n` at `at` (connection-reset semantics for everyone
  /// talking to it); restart it `duration` later.
  void schedule_node_crash(sim::Time at, net::NodeId n, sim::Time duration);
  /// Blackhole node `n` at `at`: it keeps accepting traffic but answers
  /// nothing until `duration` later. Only peer deadlines recover.
  void schedule_blackhole(sim::Time at, net::NodeId n, sim::Time duration);
  /// Fail-slow: multiply `srv`'s request CPU by `factor` (the gray-
  /// failure literature's 10-100x) from `at` until `at + duration`.
  void schedule_fail_slow(sim::Time at, gpfs::NsdServer& srv, double factor,
                          sim::Time duration);
  /// Crash whichever node holds `fs`'s manager role at fire time (the
  /// role may have moved since scheduling); restart it `duration` later.
  /// With a watched cluster this provokes a manager takeover: successor
  /// election, token-state rebuild from client assertions, and epoch
  /// fencing of the deposed incarnation.
  void schedule_crash_manager(sim::Time at, gpfs::FileSystem& fs,
                              sim::Time duration);
  /// Whole-site outage: blackhole every node in `site` at `at` and heal
  /// them all `duration` later. Models a WAN partition / power event
  /// taking out one end of a multi-site file system; replicated reads
  /// must fail over to copies at the surviving site.
  void schedule_site_outage(sim::Time at, std::vector<net::NodeId> site,
                            sim::Time duration);
  /// Permanent NSD loss: at `at`, fail NSD `nsd_id`'s backing device
  /// (every I/O returns media errors from then on) and mark it down in
  /// `fs`'s allocator so new blocks route around it. Never heals —
  /// recovery is re-protection (FileSystem::evacuate_nsd), not repair.
  void schedule_nsd_loss(sim::Time at, gpfs::FileSystem& fs,
                         std::uint32_t nsd_id);

  // --- stochastic processes ---------------------------------------------
  /// Flap the a<->b link: starting at `start`, draw time-to-failure from
  /// Exp(mttf) and outage length from Exp(mttr); stop injecting new
  /// failures after `until` (in-progress outages still heal).
  void flap_link(net::NodeId a, net::NodeId b, sim::Time mttf, sim::Time mttr,
                 sim::Time start, sim::Time until);
  /// Same process, but crashing and restarting a node.
  void churn_node(net::NodeId n, sim::Time mttf, sim::Time mttr,
                  sim::Time start, sim::Time until);

  // --- introspection ------------------------------------------------------
  std::uint64_t link_cuts() const { return link_cuts_; }
  std::uint64_t node_crashes() const { return node_crashes_; }
  std::uint64_t blackholes() const { return blackholes_; }
  std::uint64_t fail_slows() const { return fail_slows_; }
  std::uint64_t manager_crashes() const { return manager_crashes_; }
  std::uint64_t site_outages() const { return site_outages_; }
  std::uint64_t nsd_losses() const { return nsd_losses_; }
  std::uint64_t faults_injected() const {
    return link_cuts_ + node_crashes_ + blackholes_ + fail_slows_;
  }
  /// Human-readable per-kind totals, one line per kind.
  std::string report() const;

 private:
  void cut_link_now(net::NodeId a, net::NodeId b, sim::Time duration);
  void crash_node_now(net::NodeId n, sim::Time duration);
  void flap_once(net::NodeId a, net::NodeId b, sim::Time mttf, sim::Time mttr,
                 sim::Time until);
  void churn_once(net::NodeId n, sim::Time mttf, sim::Time mttr,
                  sim::Time until);

  net::Network& net_;
  Rng rng_;
  gpfs::ConnectionPool* pool_ = nullptr;
  gpfs::Cluster* cluster_ = nullptr;
  std::uint64_t link_cuts_ = 0;
  std::uint64_t node_crashes_ = 0;
  std::uint64_t blackholes_ = 0;
  std::uint64_t fail_slows_ = 0;
  std::uint64_t manager_crashes_ = 0;  // crash_manager firings (also counted
                                       // in node_crashes_ via the shared body)
  std::uint64_t site_outages_ = 0;
  std::uint64_t nsd_losses_ = 0;
};

}  // namespace mgfs::fault
