#include "hsm/tape.hpp"

#include <algorithm>

namespace mgfs::hsm {

TapeLibrary::TapeLibrary(sim::Simulator& sim, std::size_t drives,
                         TapeSpec spec, std::string name)
    : sim_(sim), spec_(spec), name_(std::move(name)), drives_(drives) {
  MGFS_ASSERT(drives > 0, "library needs at least one drive");
  MGFS_ASSERT(spec_.volume_capacity > 0 && spec_.rate > 0, "bad tape spec");
}

sim::Time TapeLibrary::schedule(std::uint32_t volume, Bytes len) {
  // Prefer an idle-soonest drive that already holds the volume; else the
  // idle-soonest drive overall (and pay the mount).
  Drive* best_loaded = nullptr;
  Drive* best_any = nullptr;
  for (Drive& d : drives_) {
    if (best_any == nullptr || d.busy_until < best_any->busy_until) {
      best_any = &d;
    }
    if (d.loaded_volume == static_cast<std::int64_t>(volume) &&
        (best_loaded == nullptr ||
         d.busy_until < best_loaded->busy_until)) {
      best_loaded = &d;
    }
  }
  Drive* d = best_loaded != nullptr ? best_loaded : best_any;
  sim::Time t = std::max(sim_.now(), d->busy_until);
  if (d->loaded_volume != static_cast<std::int64_t>(volume)) {
    t += spec_.mount_s;
    d->loaded_volume = static_cast<std::int64_t>(volume);
    ++mounts_;
  }
  t += spec_.position_s + static_cast<double>(len) / spec_.rate;
  d->busy_until = t;
  return t;
}

void TapeLibrary::append(Bytes len,
                         std::function<void(Result<TapeAddr>)> done) {
  if (len == 0) {
    sim_.defer([done = std::move(done)] {
      done(err(Errc::invalid_argument, "zero-length archive"));
    });
    return;
  }
  if (write_offset_ + len > spec_.volume_capacity) {
    // Open a fresh volume; oversized objects span is not modeled —
    // archive in volume-sized pieces at the HSM layer.
    if (len > spec_.volume_capacity) {
      sim_.defer([done = std::move(done)] {
        done(err(Errc::invalid_argument, "object larger than a volume"));
      });
      return;
    }
    ++write_volume_;
    write_offset_ = 0;
  }
  const TapeAddr addr{write_volume_, write_offset_};
  write_offset_ += len;
  bytes_written_ += len;
  if (lost_.size() <= write_volume_) lost_.resize(write_volume_ + 1, false);
  const sim::Time t = schedule(addr.volume, len);
  sim_.at(t, [done = std::move(done), addr] { done(addr); });
}

void TapeLibrary::read(TapeAddr addr, Bytes len,
                       std::function<void(const Status&)> done) {
  if (addr.volume > write_volume_ ||
      addr.offset + len > spec_.volume_capacity) {
    sim_.defer([done = std::move(done)] {
      done(Status(Errc::invalid_argument, "bad tape address"));
    });
    return;
  }
  if (volume_lost(addr.volume)) {
    sim_.defer([done = std::move(done)] {
      done(Status(Errc::io_error, "volume lost"));
    });
    return;
  }
  const sim::Time t = schedule(addr.volume, len);
  sim_.at(t, [done = std::move(done)] { done(Status{}); });
}

void TapeLibrary::lose_volume(std::uint32_t volume) {
  if (lost_.size() <= volume) lost_.resize(volume + 1, false);
  lost_[volume] = true;
}

bool TapeLibrary::volume_lost(std::uint32_t volume) const {
  return volume < lost_.size() && lost_[volume];
}

}  // namespace mgfs::hsm
