// Tape library: robot-mounted sequential media behind a few drives.
//
// The paper's archival substrate (§2: "Silos and Tape Drives (6 PB),
// 30 MB/s per drive"; §8: automatic migration to tape and recall from
// deep archive). Cost model per operation: a volume mount (robot +
// load + thread) when the drive must switch volumes, a position step,
// then streaming at drive rate. Drives are FIFO resources; the library
// prefers a drive that already holds the wanted volume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace mgfs::hsm {

struct TapeSpec {
  BytesPerSec rate = 30e6;         // paper: 30 MB/s per drive
  sim::Time mount_s = 60.0;        // robot fetch + load + thread
  sim::Time position_s = 20.0;     // average locate on a loaded volume
  Bytes volume_capacity = 200 * GB;
};

/// Where archived bytes live: a volume and an offset within it.
struct TapeAddr {
  std::uint32_t volume = 0;
  Bytes offset = 0;
  friend bool operator==(const TapeAddr&, const TapeAddr&) = default;
};

class TapeLibrary {
 public:
  TapeLibrary(sim::Simulator& sim, std::size_t drives, TapeSpec spec = {},
              std::string name = "silo");

  /// Append `len` bytes to the archive; the address comes back through
  /// `done`. Appends fill the current volume before opening a new one.
  void append(Bytes len,
              std::function<void(Result<TapeAddr>)> done);

  /// Stream `len` bytes starting at `addr` back off tape.
  void read(TapeAddr addr, Bytes len,
            std::function<void(const Status&)> done);

  /// Destroy a volume (media failure / fire drill); reads of it fail
  /// with io_error until restored from a mirror.
  void lose_volume(std::uint32_t volume);
  bool volume_lost(std::uint32_t volume) const;

  std::size_t drive_count() const { return drives_.size(); }
  std::uint32_t volumes_used() const { return write_volume_ + 1; }
  Bytes bytes_on_tape() const { return bytes_written_; }
  std::uint64_t mounts() const { return mounts_; }
  const TapeSpec& spec() const { return spec_; }

 private:
  struct Drive {
    sim::Time busy_until = 0;
    std::int64_t loaded_volume = -1;  // -1 = empty
  };

  /// Schedule `len` streaming bytes against `volume`; returns completion
  /// time and updates drive state.
  sim::Time schedule(std::uint32_t volume, Bytes len);

  sim::Simulator& sim_;
  TapeSpec spec_;
  std::string name_;
  std::vector<Drive> drives_;
  std::uint32_t write_volume_ = 0;
  Bytes write_offset_ = 0;
  Bytes bytes_written_ = 0;
  std::uint64_t mounts_ = 0;
  std::vector<bool> lost_;
};

}  // namespace mgfs::hsm
