#include "hsm/hsm.hpp"

#include <algorithm>
#include <memory>

#include "common/log.hpp"

namespace mgfs::hsm {

HsmManager::HsmManager(sim::Simulator& sim, gridftp::FileStore& cache,
                       TapeLibrary& tape, HsmConfig cfg)
    : sim_(sim), cache_(cache), tape_(tape), cfg_(cfg) {
  MGFS_ASSERT(cfg_.low_watermark < cfg_.high_watermark &&
                  cfg_.high_watermark <= 1.0,
              "bad water marks");
  MGFS_ASSERT(cfg_.archive_piece > 0, "zero archive piece");
}

double HsmManager::fill_fraction() const {
  return static_cast<double>(cache_.used()) /
         static_cast<double>(cache_.capacity());
}

std::size_t HsmManager::piece_count(const Entry& e) const {
  return static_cast<std::size_t>(ceil_div(e.size, cfg_.archive_piece));
}

Bytes HsmManager::piece_len(const Entry& e, std::size_t idx) const {
  const Bytes start = static_cast<Bytes>(idx) * cfg_.archive_piece;
  return std::min(cfg_.archive_piece, e.size - start);
}

Status HsmManager::ingest(const std::string& name, Bytes size) {
  if (files_.count(name)) return Status(Errc::exists, name);
  auto ext = cache_.add(name, size);
  if (!ext.ok()) return ext.error();
  Entry e;
  e.size = size;
  e.resident = true;
  e.last_access = sim_.now();
  files_[name] = std::move(e);
  return Status{};
}

void HsmManager::touch(const std::string& name) {
  auto it = files_.find(name);
  if (it != files_.end()) it->second.last_access = sim_.now();
}

bool HsmManager::resident(const std::string& name) const {
  auto it = files_.find(name);
  return it != files_.end() && it->second.resident;
}

bool HsmManager::archived(const std::string& name) const {
  auto it = files_.find(name);
  return it != files_.end() && !it->second.pieces.empty();
}

bool HsmManager::known(const std::string& name) const {
  return files_.count(name) > 0;
}

void HsmManager::archive_pieces(const std::string& name, std::size_t idx,
                                std::function<void(const Status&)> done) {
  Entry& e = files_.at(name);
  if (idx >= piece_count(e)) {
    done(Status{});
    return;
  }
  const Bytes len = piece_len(e, idx);
  tape_.append(len, [this, name, idx, len,
                     done = std::move(done)](Result<TapeAddr> addr) mutable {
    if (!addr.ok()) {
      done(addr.error());
      return;
    }
    Entry& e2 = files_.at(name);
    e2.pieces.push_back(*addr);
    if (mirror_ != nullptr) {
      mirror_->append(len, [this, name, idx,
                            done = std::move(done)](Result<TapeAddr> m)
                          mutable {
        if (!m.ok()) {
          done(m.error());
          return;
        }
        files_.at(name).mirror_pieces.push_back(*m);
        archive_pieces(name, idx + 1, std::move(done));
      });
    } else {
      archive_pieces(name, idx + 1, std::move(done));
    }
  });
}

void HsmManager::archive(const std::string& name,
                         std::function<void(const Status&)> done) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    sim_.defer([done = std::move(done), name] {
      done(Status(Errc::not_found, name));
    });
    return;
  }
  if (!it->second.pieces.empty()) {
    sim_.defer([done = std::move(done)] { done(Status{}); });  // idempotent
    return;
  }
  archive_pieces(name, 0, std::move(done));
}

void HsmManager::recall_pieces(const std::string& name, std::size_t idx,
                               double t0,
                               std::function<void(const Status&)> done) {
  Entry& e = files_.at(name);
  if (idx >= piece_count(e)) {
    e.resident = true;
    ++recalls_;
    recall_latency_.add(sim_.now() - t0);
    done(Status{});
    return;
  }
  const Bytes len = piece_len(e, idx);
  const TapeAddr addr = e.pieces[idx];
  tape_.read(addr, len, [this, name, idx, len, t0,
                         done = std::move(done)](const Status& st) mutable {
    if (st.ok()) {
      recall_pieces(name, idx + 1, t0, std::move(done));
      return;
    }
    // Primary media problem: the copyright-library path — read the
    // remote second copy instead.
    Entry& e2 = files_.at(name);
    if (mirror_ == nullptr || idx >= e2.mirror_pieces.size()) {
      done(st);
      return;
    }
    ++mirror_recalls_;
    mirror_->read(e2.mirror_pieces[idx], len,
                  [this, name, idx, t0,
                   done = std::move(done)](const Status& st2) mutable {
                    if (!st2.ok()) {
                      done(st2);
                      return;
                    }
                    recall_pieces(name, idx + 1, t0, std::move(done));
                  });
  });
}

void HsmManager::ensure_online(const std::string& name,
                               std::function<void(const Status&)> done) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    sim_.defer([done = std::move(done), name] {
      done(Status(Errc::not_found, name));
    });
    return;
  }
  it->second.last_access = sim_.now();
  if (it->second.resident) {
    sim_.defer([done = std::move(done)] { done(Status{}); });
    return;
  }
  if (it->second.pieces.empty()) {
    sim_.defer([done = std::move(done), name] {
      done(Status(Errc::io_error, name + " purged but never archived"));
    });
    return;
  }
  // Re-reserve disk space, then stream back.
  auto ext = cache_.add(name, it->second.size);
  if (!ext.ok()) {
    sim_.defer([done = std::move(done), e = ext.error()] { done(e); });
    return;
  }
  recall_pieces(name, 0, sim_.now(), std::move(done));
}

const std::string* HsmManager::pick_lru_resident() const {
  const std::string* best = nullptr;
  double best_t = 0;
  for (const auto& [name, e] : files_) {
    if (!e.resident) continue;
    if (best == nullptr || e.last_access < best_t) {
      best = &name;
      best_t = e.last_access;
    }
  }
  return best;
}

void HsmManager::run_policy(std::function<void(const Status&)> done) {
  if (fill_fraction() <= cfg_.high_watermark) {
    sim_.defer([done = std::move(done)] { done(Status{}); });
    return;
  }
  // Archive-then-purge LRU files until at or below the low water mark.
  auto finish = std::make_shared<std::function<void(const Status&)>>(
      std::move(done));
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, finish, step] {
    if (fill_fraction() <= cfg_.low_watermark) {
      (*finish)(Status{});
      return;
    }
    const std::string* victim = pick_lru_resident();
    if (victim == nullptr) {
      (*finish)(Status(Errc::no_space, "nothing left to purge"));
      return;
    }
    const std::string name = *victim;
    archive(name, [this, name, finish, step](const Status& st) {
      if (!st.ok()) {
        (*finish)(st);
        return;
      }
      Entry& e = files_.at(name);
      MGFS_ASSERT(cache_.remove(name).ok(), "purge of unknown extent");
      e.resident = false;
      ++migrations_;
      MGFS_INFO("hsm", "migrated " << name << " to tape, fill now "
                                   << fill_fraction());
      (*step)();
    });
  };
  (*step)();
}

}  // namespace mgfs::hsm
