// Hierarchical Storage Management over a disk cache + tape library.
//
// The paper's §8 future-work paradigm, made runnable: "an automatic,
// algorithmic approach where data is migrated to tape storage as it is
// less used and recalled when needed", plus the "copyright library"
// idea — a guaranteed remote second copy (SDSC and PSC already archived
// for each other in 2005) from which a lost local volume is recovered.
//
// Model: files live in a FileStore (the GFS disk pool); run_policy()
// enforces water marks by archiving + purging least-recently-used
// files; ensure_online() recalls purged files before access, falling
// back to the mirror library when the primary volume is lost.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.hpp"
#include "gridftp/filestore.hpp"
#include "hsm/tape.hpp"

namespace mgfs::hsm {

struct HsmConfig {
  double high_watermark = 0.90;  // run_policy target trigger
  double low_watermark = 0.70;   // purge down to this fill
  Bytes archive_piece = 32 * GiB;  // tape objects (must fit a volume)
};

class HsmManager {
 public:
  HsmManager(sim::Simulator& sim, gridftp::FileStore& cache,
             TapeLibrary& tape, HsmConfig cfg = {});

  /// Register a remote second-copy library (the PSC of §8). Archives are
  /// written to both; recalls fall back to it on primary media loss.
  void set_mirror(TapeLibrary* mirror) { mirror_ = mirror; }

  // --- lifecycle ---------------------------------------------------------
  /// Create a new file in the disk cache (fails with no_space if even
  /// policy-driven purging could not make room — caller may run_policy
  /// first).
  Status ingest(const std::string& name, Bytes size);

  /// Record an access (drives LRU).
  void touch(const std::string& name);

  bool resident(const std::string& name) const;
  bool archived(const std::string& name) const;
  bool known(const std::string& name) const;

  /// Make a file resident, recalling from tape when purged. `done` runs
  /// after the bytes are back on disk (recall latency is recorded).
  void ensure_online(const std::string& name,
                     std::function<void(const Status&)> done);

  /// Copy a file to tape (and the mirror) without purging it —
  /// "premigration". Idempotent.
  void archive(const std::string& name,
               std::function<void(const Status&)> done);

  /// Enforce the water marks: if the cache is above high_watermark,
  /// archive-and-purge LRU files until at/below low_watermark. `done`
  /// runs when the cache is compliant.
  void run_policy(std::function<void(const Status&)> done);

  double fill_fraction() const;

  // --- stats ---------------------------------------------------------------
  std::uint64_t migrations() const { return migrations_; }
  std::uint64_t recalls() const { return recalls_; }
  std::uint64_t mirror_recalls() const { return mirror_recalls_; }
  const Histogram& recall_latency() const { return recall_latency_; }

 private:
  struct Entry {
    Bytes size = 0;
    bool resident = false;
    double last_access = 0;
    // Tape pieces (primary and mirror), in file order; empty = never
    // archived.
    std::vector<TapeAddr> pieces;
    std::vector<TapeAddr> mirror_pieces;
  };

  /// Archive pieces [idx..] of `e`, then `done`.
  void archive_pieces(const std::string& name, std::size_t idx,
                      std::function<void(const Status&)> done);
  void recall_pieces(const std::string& name, std::size_t idx, double t0,
                     std::function<void(const Status&)> done);
  std::size_t piece_count(const Entry& e) const;
  Bytes piece_len(const Entry& e, std::size_t idx) const;
  const std::string* pick_lru_resident() const;

  sim::Simulator& sim_;
  gridftp::FileStore& cache_;
  TapeLibrary& tape_;
  TapeLibrary* mirror_ = nullptr;
  HsmConfig cfg_;
  std::unordered_map<std::string, Entry> files_;
  std::uint64_t migrations_ = 0;
  std::uint64_t recalls_ = 0;
  std::uint64_t mirror_recalls_ = 0;
  Histogram recall_latency_{60.0, 400, "recall-latency"};
};

}  // namespace mgfs::hsm
