#include "net/tcp.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace mgfs::net {

TcpConnection::TcpConnection(Network& net, NodeId src, NodeId dst,
                             TcpConfig cfg)
    : net_(net), src_(src), dst_(dst), cfg_(cfg) {
  MGFS_ASSERT(cfg_.chunk > 0 && cfg_.window >= cfg_.chunk,
              "window must hold at least one chunk");
  cwnd_ = cfg_.slow_start ? cfg_.chunk : cfg_.window;
}

void TcpConnection::send(Bytes n, Callback on_complete,
                         ErrorCallback on_error) {
  if (broken_) {
    if (on_error) {
      net_.simulator().defer(std::move(on_error));
    }
    return;
  }
  if (n == 0) {
    // Degenerate but legal: complete after one path round trip worth of
    // nothing — deliver immediately on the next event round.
    if (on_complete) net_.simulator().defer(std::move(on_complete));
    return;
  }
  queue_.push_back(Message{n, n, std::move(on_complete), std::move(on_error)});
  pump();
}

void TcpConnection::pump() {
  if (broken_) return;
  if (pumping_) return;  // pump() can re-enter via synchronous failures
  pumping_ = true;
  while (inflight_ < cwnd_) {
    while (send_cursor_ < queue_.size() && queue_[send_cursor_].to_send == 0) {
      ++send_cursor_;
    }
    if (send_cursor_ >= queue_.size()) break;
    Message& m = queue_[send_cursor_];
    const Bytes c = std::min(cfg_.chunk, m.to_send);
    m.to_send -= c;
    inflight_ += c;
    const std::uint64_t ep = epoch_;
    net_.send(
        src_, dst_, c,
        /*delivered=*/
        [this, c, ep] {
          if (ep != epoch_) return;
          on_chunk_delivered(c);
          net_.send(
              dst_, src_, cfg_.ack_bytes,
              [this, c, ep] {
                if (ep != epoch_) return;
                on_ack(c);
              },
              [this, ep] {
                if (ep == epoch_) on_path_failure();
              });
        },
        /*on_fail=*/
        [this, ep] {
          if (ep == epoch_) on_path_failure();
        });
    if (broken_) break;
  }
  pumping_ = false;
}

void TcpConnection::on_chunk_delivered(Bytes n) {
  bytes_delivered_ += n;
  MGFS_ASSERT(!queue_.empty() && queue_.front().to_deliver >= n,
              "chunk delivery without matching message");
  Message& m = queue_.front();
  m.to_deliver -= n;
  if (m.to_deliver == 0) {
    MGFS_ASSERT(m.to_send == 0, "message delivered before fully sent");
    Callback cb = std::move(m.on_complete);
    queue_.pop_front();
    if (send_cursor_ > 0) --send_cursor_;
    ++messages_completed_;
    if (cb) cb();
  }
}

void TcpConnection::on_ack(Bytes n) {
  MGFS_ASSERT(inflight_ >= n, "ack for bytes not in flight");
  inflight_ -= n;
  if (cfg_.slow_start && cwnd_ < cfg_.window) {
    cwnd_ = std::min<Bytes>(cwnd_ + cfg_.chunk, cfg_.window);
  }
  pump();
}

void TcpConnection::on_path_failure() {
  broken_ = true;
  ++epoch_;  // ignore every in-flight continuation
  inflight_ = 0;
  send_cursor_ = 0;
  cwnd_ = cfg_.slow_start ? cfg_.chunk : cfg_.window;
  std::vector<ErrorCallback> to_fail;
  to_fail.reserve(queue_.size());
  for (auto& m : queue_) {
    if (m.on_error) to_fail.push_back(std::move(m.on_error));
  }
  queue_.clear();
  for (auto& cb : to_fail) cb();
}

void TcpConnection::reset() {
  ++epoch_;
  broken_ = false;
  inflight_ = 0;
  send_cursor_ = 0;
  // Queued messages die with the old connection; their senders must
  // hear about it (deferred — reset is often called from inside another
  // message's completion path).
  std::vector<ErrorCallback> to_fail;
  to_fail.reserve(queue_.size());
  for (auto& m : queue_) {
    if (m.on_error) to_fail.push_back(std::move(m.on_error));
  }
  queue_.clear();
  for (auto& cb : to_fail) net_.simulator().defer(std::move(cb));
  cwnd_ = cfg_.slow_start ? cfg_.chunk : cfg_.window;
}

}  // namespace mgfs::net
