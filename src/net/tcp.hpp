// Windowed transport connections over the simulated network.
//
// This is the mechanism behind the paper's central observation: a WAN
// round-trip of 80 ms does *not* doom a global file system, because GPFS
// fans every client out to dozens of NSD servers over concurrent
// sockets, while any single window-limited socket is capped at
// window/RTT (1 MiB / 80 ms = 12.5 MB/s in 2005-default tuning).
//
// The model: a connection from a to b carries messages as fixed-size
// chunks. At most `window` bytes are unacknowledged in flight;
// acknowledgments (small messages) return over the reverse path. Slow
// start grows the congestion window one chunk per ack from one chunk up
// to `window`. Chunks traverse each link through its FIFO Pipe, so
// competing connections share bottlenecks naturally.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/units.hpp"
#include "net/network.hpp"

namespace mgfs::net {

struct TcpConfig {
  Bytes window = 1 * MiB;   // max unacked bytes (socket buffer)
  Bytes chunk = 256 * KiB;  // transfer granularity
  Bytes ack_bytes = 40;     // ack frame size on the reverse path
  bool slow_start = true;   // ramp cwnd from one chunk
};

class TcpConnection {
 public:
  using Callback = std::function<void()>;
  using ErrorCallback = std::function<void()>;

  TcpConnection(Network& net, NodeId src, NodeId dst, TcpConfig cfg = {});

  /// Queue `n` bytes; `on_complete` fires when the last byte arrives at
  /// the destination. `on_error` fires (once per message) if the path
  /// fails. Messages complete in FIFO order.
  void send(Bytes n, Callback on_complete, ErrorCallback on_error = nullptr);

  /// True once a path failure has been observed; subsequent sends fail
  /// immediately until reset() is called.
  bool broken() const { return broken_; }
  /// Abandon the connection state: in-flight chunks are disowned (their
  /// continuations become no-ops) and still-queued messages fail via
  /// their error callbacks, deferred. Used after a path failure and by
  /// RPC deadline expiry to unwedge a stalled (e.g. blackholed) pair.
  void reset();

  Bytes bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t messages_completed() const { return messages_completed_; }
  Bytes inflight() const { return inflight_; }
  Bytes cwnd() const { return cwnd_; }
  NodeId src() const { return src_; }
  NodeId dst() const { return dst_; }
  const TcpConfig& config() const { return cfg_; }

 private:
  struct Message {
    Bytes to_send;     // bytes not yet put on the wire
    Bytes to_deliver;  // bytes not yet arrived at dst
    Callback on_complete;
    ErrorCallback on_error;
  };

  void pump();
  void on_chunk_delivered(Bytes n);
  void on_ack(Bytes n);
  void on_path_failure();

  Network& net_;
  NodeId src_, dst_;
  TcpConfig cfg_;
  Bytes cwnd_;
  Bytes inflight_ = 0;
  bool broken_ = false;
  bool pumping_ = false;
  std::deque<Message> queue_;   // [0] = oldest incomplete message
  std::size_t send_cursor_ = 0; // index of first message with to_send > 0
  Bytes bytes_delivered_ = 0;
  std::uint64_t messages_completed_ = 0;
  std::uint64_t epoch_ = 0;  // invalidates in-flight callbacks after reset
};

}  // namespace mgfs::net
