#include "net/presets.hpp"

namespace mgfs::net {

Site add_site(Network& net, const std::string& name, std::size_t hosts,
              BytesPerSec host_rate, sim::Time host_latency,
              double host_efficiency) {
  Site site;
  site.name = name;
  site.sw = net.add_node(name + ".sw");
  site.hosts.reserve(hosts);
  for (std::size_t i = 0; i < hosts; ++i) {
    NodeId h = net.add_node(name + ".h" + std::to_string(i));
    net.connect(h, site.sw, host_rate, host_latency, host_efficiency);
    site.hosts.push_back(h);
  }
  return site;
}

TeraGrid make_teragrid_2004(Network& net, const TeraGridSpec& spec) {
  TeraGrid tg;
  tg.la = net.add_node("hub.la");
  tg.chi = net.add_node("hub.chi");
  // 40 Gb/s extensible backplane, LA <-> Chicago. ~25 ms one way.
  net.connect(tg.la, tg.chi, spec.backbone, 25e-3, 1.0, "backbone");

  tg.sdsc = add_site(net, "sdsc", spec.sdsc_hosts, spec.host_rate);
  tg.ncsa = add_site(net, "ncsa", spec.ncsa_hosts, spec.host_rate);
  tg.anl = add_site(net, "anl", spec.anl_hosts, spec.host_rate);
  tg.caltech = add_site(net, "caltech", spec.caltech_hosts, spec.host_rate);
  tg.psc = add_site(net, "psc", spec.psc_hosts, spec.host_rate);

  net.connect(tg.sdsc.sw, tg.la, spec.site_uplink, 3e-3, 1.0, "sdsc-la");
  net.connect(tg.caltech.sw, tg.la, spec.site_uplink, 1e-3, 1.0, "caltech-la");
  net.connect(tg.ncsa.sw, tg.chi, spec.site_uplink, 2e-3, 1.0, "ncsa-chi");
  net.connect(tg.anl.sw, tg.chi, spec.site_uplink, 1e-3, 1.0, "anl-chi");
  net.connect(tg.psc.sw, tg.chi, spec.site_uplink, 5e-3, 1.0, "psc-chi");
  return tg;
}

Sc02Wan make_sc02_wan(Network& net, std::size_t sdsc_hosts,
                      std::size_t floor_hosts, BytesPerSec wan_rate,
                      BytesPerSec host_rate) {
  Sc02Wan w;
  w.la = net.add_node("hub.la");
  w.chi = net.add_node("hub.chi");
  w.sdsc = add_site(net, "sdsc", sdsc_hosts, host_rate, 50e-6, 1.0);
  w.baltimore = add_site(net, "balt", floor_hosts, host_rate, 50e-6, 1.0);
  // One-way 3 + 25 + 12 = 40 ms -> the measured 80 ms RTT of §2.
  net.connect(w.sdsc.sw, w.la, wan_rate, 3e-3, 1.0, "sdsc-la");
  net.connect(w.la, w.chi, wan_rate, 25e-3, 1.0, "la-chi");
  net.connect(w.chi, w.baltimore.sw, wan_rate, 12e-3, 1.0, "chi-balt");
  return w;
}

}  // namespace mgfs::net
