#include "net/network.hpp"

#include <deque>
#include <utility>

namespace mgfs::net {

NodeId Network::add_node(std::string name) {
  nodes_.push_back(Node{std::move(name), true, false, {}});
  invalidate_routes();
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

void Network::connect(NodeId a, NodeId b, BytesPerSec rate, sim::Time latency,
                      double efficiency, const std::string& name) {
  MGFS_ASSERT(a.v < nodes_.size() && b.v < nodes_.size(), "bad node id");
  MGFS_ASSERT(a != b, "self link");
  MGFS_ASSERT(efficiency > 0.0 && efficiency <= 1.0, "bad link efficiency");
  MGFS_ASSERT(nodes_[a.v].out.find(b.v) == nodes_[a.v].out.end(),
              "duplicate link");
  const std::string base =
      name.empty() ? nodes_[a.v].name + "<->" + nodes_[b.v].name : name;
  pipes_.push_back(std::make_unique<sim::Pipe>(sim_, rate * efficiency,
                                               latency, base + ">"));
  nodes_[a.v].out[b.v] = pipes_.size() - 1;
  pipes_.push_back(std::make_unique<sim::Pipe>(sim_, rate * efficiency,
                                               latency, base + "<"));
  nodes_[b.v].out[a.v] = pipes_.size() - 1;
  invalidate_routes();
}

sim::Pipe* Network::pipe(NodeId a, NodeId b) {
  if (a.v >= nodes_.size()) return nullptr;
  auto it = nodes_[a.v].out.find(b.v);
  return it == nodes_[a.v].out.end() ? nullptr : pipes_[it->second].get();
}

const sim::Pipe* Network::pipe(NodeId a, NodeId b) const {
  return const_cast<Network*>(this)->pipe(a, b);
}

const std::vector<std::int64_t>& Network::bfs_from(NodeId src) const {
  if (cache_generation_ != topo_generation_) {
    route_cache_.clear();
    cache_generation_ = topo_generation_;
  }
  auto it = route_cache_.find(src.v);
  if (it != route_cache_.end()) return it->second;

  std::vector<std::int64_t> pred(nodes_.size(), -1);
  std::deque<std::uint32_t> q;
  pred[src.v] = static_cast<std::int64_t>(src.v);
  q.push_back(src.v);
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop_front();
    for (const auto& [v, pipe_idx] : nodes_[u].out) {
      (void)pipe_idx;
      if (pred[v] == -1) {
        pred[v] = static_cast<std::int64_t>(u);
        q.push_back(v);
      }
    }
  }
  return route_cache_.emplace(src.v, std::move(pred)).first->second;
}

std::vector<NodeId> Network::path(NodeId from, NodeId to) const {
  MGFS_ASSERT(from.v < nodes_.size() && to.v < nodes_.size(), "bad node id");
  const auto& pred = bfs_from(from);
  if (pred[to.v] == -1) return {};
  std::vector<NodeId> hops;
  for (std::uint32_t cur = to.v;;) {
    hops.push_back(NodeId{cur});
    if (cur == from.v) break;
    cur = static_cast<std::uint32_t>(pred[cur]);
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

std::optional<sim::Time> Network::rtt(NodeId a, NodeId b) const {
  const auto hops = path(a, b);
  if (hops.empty()) return std::nullopt;
  sim::Time one_way = 0.0;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    one_way += pipe(hops[i], hops[i + 1])->latency();
  }
  return 2.0 * one_way;
}

void Network::set_node_up(NodeId n, bool up) {
  MGFS_ASSERT(n.v < nodes_.size(), "bad node id");
  nodes_[n.v].up = up;
}

bool Network::node_up(NodeId n) const {
  MGFS_ASSERT(n.v < nodes_.size(), "bad node id");
  return nodes_[n.v].up;
}

void Network::set_node_blackholed(NodeId n, bool blackholed) {
  MGFS_ASSERT(n.v < nodes_.size(), "bad node id");
  nodes_[n.v].blackholed = blackholed;
}

bool Network::node_blackholed(NodeId n) const {
  MGFS_ASSERT(n.v < nodes_.size(), "bad node id");
  return nodes_[n.v].blackholed;
}

void Network::set_link_up(NodeId a, NodeId b, bool up) {
  sim::Pipe* ab = pipe(a, b);
  sim::Pipe* ba = pipe(b, a);
  MGFS_ASSERT(ab != nullptr && ba != nullptr, "no such link");
  ab->set_up(up);
  ba->set_up(up);
}

const std::string& Network::node_name(NodeId n) const {
  MGFS_ASSERT(n.v < nodes_.size(), "bad node id");
  return nodes_[n.v].name;
}

void Network::fail(const std::shared_ptr<sim::Callback>& on_fail) {
  if (on_fail && *on_fail) {
    // Connection-reset semantics: the sender learns quickly, not never.
    sim_.after(1e-3, [on_fail] { (*on_fail)(); });
  }
}

void Network::send(NodeId from, NodeId to, Bytes payload,
                   sim::Callback delivered, sim::Callback on_fail) {
  auto fail_cb = std::make_shared<sim::Callback>(std::move(on_fail));
  auto done_cb = std::make_shared<sim::Callback>(std::move(delivered));
  auto hops = path(from, to);
  if (hops.empty()) {
    fail(fail_cb);
    return;
  }
  forward(std::move(hops), 0, payload, std::move(done_cb), std::move(fail_cb));
}

void Network::forward(std::vector<NodeId> hops, std::size_t idx, Bytes payload,
                      std::shared_ptr<sim::Callback> delivered,
                      std::shared_ptr<sim::Callback> on_fail) {
  const NodeId here = hops[idx];
  if (!node_up(here)) {
    fail(on_fail);
    return;
  }
  if (nodes_[here.v].blackholed) {
    // Gray failure: the message vanishes — no delivery, no reset. The
    // sender can only find out through its own deadline.
    return;
  }
  if (idx + 1 == hops.size()) {
    if (*delivered) (*delivered)();
    return;
  }
  sim::Pipe* p = pipe(here, hops[idx + 1]);
  MGFS_ASSERT(p != nullptr, "route through missing link");
  if (!p->up()) {
    fail(on_fail);
    return;
  }
  p->transfer(payload, [this, hops = std::move(hops), idx, payload,
                        delivered = std::move(delivered),
                        on_fail = std::move(on_fail)]() mutable {
    forward(std::move(hops), idx + 1, payload, std::move(delivered),
            std::move(on_fail));
  });
}

}  // namespace mgfs::net
