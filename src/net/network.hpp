// Simulated IP network: nodes, duplex links, shortest-path routing, and
// hop-by-hop message delivery with per-link serialization and FIFO
// queueing (each direction of each link is a sim::Pipe).
//
// The topology vocabulary is deliberately plain — hosts, switches and
// routers are all just nodes — because the paper's configurations mix
// show-floor GbE switches, SciNet 10 GbE uplinks and the TeraGrid
// backbone; presets.hpp builds those concrete graphs.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"
#include "sim/pipe.hpp"
#include "sim/simulator.hpp"

namespace mgfs::net {

struct NodeId {
  std::uint32_t v = 0;
  friend bool operator==(NodeId a, NodeId b) { return a.v == b.v; }
  friend bool operator!=(NodeId a, NodeId b) { return a.v != b.v; }
};

struct NodeIdHash {
  std::size_t operator()(NodeId n) const { return n.v; }
};

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  NodeId add_node(std::string name);

  /// Create a duplex link: one Pipe per direction, each at `rate *
  /// efficiency` with one-way `latency`. `efficiency` folds in framing /
  /// TCP-IP header overhead (a 10 GbE link at the paper's observed 8.96
  /// Gb/s peak corresponds to ~0.9 end-to-end efficiency).
  void connect(NodeId a, NodeId b, BytesPerSec rate, sim::Time latency,
               double efficiency = 1.0, const std::string& name = {});

  /// Deliver `payload` bytes from `from` to `to` along the shortest path.
  /// `delivered` fires at the destination; if any node or link on the
  /// path is down (or no path exists), `on_fail` fires instead after one
  /// hop's latency (connection-reset semantics).
  void send(NodeId from, NodeId to, Bytes payload,
            sim::Callback delivered,
            sim::Callback on_fail = nullptr);

  /// Directed pipe a->b, or nullptr if the nodes are not adjacent.
  sim::Pipe* pipe(NodeId a, NodeId b);
  const sim::Pipe* pipe(NodeId a, NodeId b) const;

  /// Round-trip time along current shortest paths, excluding queueing
  /// and serialization (pure propagation, both directions).
  std::optional<sim::Time> rtt(NodeId a, NodeId b) const;

  /// Hop sequence (node ids including endpoints), empty if unreachable.
  std::vector<NodeId> path(NodeId from, NodeId to) const;

  void set_node_up(NodeId n, bool up);
  bool node_up(NodeId n) const;
  void set_link_up(NodeId a, NodeId b, bool up);  // both directions

  /// Gray failure: a blackholed node accepts traffic (senders see no
  /// connection reset) but silently swallows every message that reaches
  /// it, whether in transit or as the destination. Callers only recover
  /// via their own deadlines (Rpc::CallOptions) — exactly the fail-slow/
  /// fail-silent behaviour that distinguishes this from set_node_up.
  void set_node_blackholed(NodeId n, bool blackholed);
  bool node_blackholed(NodeId n) const;

  const std::string& node_name(NodeId n) const;
  std::size_t node_count() const { return nodes_.size(); }
  sim::Simulator& simulator() { return sim_; }

 private:
  struct Node {
    std::string name;
    bool up = true;
    bool blackholed = false;
    // adjacency: neighbor -> index into pipes_
    std::unordered_map<std::uint32_t, std::size_t> out;
  };

  void forward(std::vector<NodeId> hops, std::size_t idx, Bytes payload,
               std::shared_ptr<sim::Callback> delivered,
               std::shared_ptr<sim::Callback> on_fail);
  void fail(const std::shared_ptr<sim::Callback>& on_fail);

  sim::Simulator& sim_;
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<sim::Pipe>> pipes_;
  // routing cache: from -> predecessor table (BFS tree toward every dest)
  mutable std::unordered_map<std::uint32_t, std::vector<std::int64_t>> route_cache_;
  mutable std::uint64_t topo_generation_ = 0;
  mutable std::uint64_t cache_generation_ = ~0ULL;

  void invalidate_routes() { ++topo_generation_; }
  const std::vector<std::int64_t>& bfs_from(NodeId src) const;
};

}  // namespace mgfs::net
