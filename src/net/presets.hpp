// Canned topologies for the paper's configurations.
//
// All WAN latencies are one-way seconds. The calibration anchors:
//   * SC'02: SDSC -> Baltimore show floor measured 80 ms RTT (paper §2)
//   * TeraGrid 2004 (paper Fig. 6): 40 Gb/s LA<->Chicago backbone, each
//     site attached at 30 Gb/s
//   * hosts are 1 GbE (IA64 NSD servers and clients of the era)
//
// Parallel show-floor uplinks (SC'04's three monitored 10 GbE links) are
// modeled by attaching host groups to distinct uplink switches — the
// same way per-host link aggregation spread load in the real setup —
// because routing is single-shortest-path.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"

namespace mgfs::net {

/// Ethernet efficiency after framing + IP/TCP headers at ~1500 MTU.
inline constexpr double kEtherEfficiency = 0.94;

/// A LAN site: one switch plus `hosts` endpoints on GbE-class links.
struct Site {
  std::string name;
  NodeId sw;
  std::vector<NodeId> hosts;
};

Site add_site(Network& net, const std::string& name, std::size_t hosts,
              BytesPerSec host_rate = gbps(1.0),
              sim::Time host_latency = 50e-6,
              double host_efficiency = kEtherEfficiency);

/// The TeraGrid as of early 2004 (paper Fig. 6): LA and Chicago hubs,
/// five sites. One-way hub latencies reproduce ~60 ms SDSC<->NCSA RTT.
struct TeraGrid {
  NodeId la;
  NodeId chi;
  Site sdsc;
  Site ncsa;
  Site anl;
  Site caltech;
  Site psc;
};

struct TeraGridSpec {
  std::size_t sdsc_hosts = 8;
  std::size_t ncsa_hosts = 8;
  std::size_t anl_hosts = 8;
  std::size_t caltech_hosts = 4;
  std::size_t psc_hosts = 4;
  BytesPerSec host_rate = gbps(1.0);
  BytesPerSec site_uplink = gbps(30.0);
  BytesPerSec backbone = gbps(40.0);
};

TeraGrid make_teragrid_2004(Network& net, const TeraGridSpec& spec = {});

/// SC'02 path: SDSC machine room to the Baltimore show floor over the
/// TeraGrid backbone plus a SciNet extension; total one-way 40 ms
/// (80 ms RTT), `wan_rate` end to end (8 Gb/s usable via 2x4 GbE in the
/// demo).
struct Sc02Wan {
  Site sdsc;       // storage side
  Site baltimore;  // show-floor side
  NodeId la;
  NodeId chi;
};

Sc02Wan make_sc02_wan(Network& net, std::size_t sdsc_hosts,
                      std::size_t floor_hosts,
                      BytesPerSec wan_rate = gbps(8.0),
                      BytesPerSec host_rate = gbps(4.0));

}  // namespace mgfs::net
