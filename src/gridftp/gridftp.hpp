// GridFTP-style bulk file movement — the baseline paradigm the paper
// argues Global File Systems supersede for supercomputing data (§1, §8).
//
// Modeled faithfully enough to be a fair baseline:
//   * control channel exchange before data flows
//   * parallel data streams (the -p knob), each an independent TCP
//     connection — this is how GridFTP fights the window/RTT cap
//   * optional striping across multiple server nodes (mode-E-like)
//   * partial gets (offset/length), since the protocol supports them —
//     the *paradigm* problem is that the workflow stages whole files
//   * disk <-> network double buffering on both ends
//
// The T-paradigm bench stages an NVO-scale dataset through this code
// and compares against direct GFS reads of just the bytes wanted.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gridftp/filestore.hpp"
#include "net/tcp.hpp"

namespace mgfs::gridftp {

struct GridFtpConfig {
  std::size_t parallel_streams = 4;
  Bytes chunk = 4 * MiB;       // disk/network transfer unit
  Bytes control_bytes = 512;   // control-channel message size
  net::TcpConfig tcp{};        // per-stream transport (2005-era window)
};

struct TransferStats {
  Bytes bytes = 0;
  double seconds = 0;
  std::size_t streams = 0;
  double rate_MBps() const {
    return seconds > 0 ? static_cast<double>(bytes) / seconds / 1e6 : 0.0;
  }
};

/// One server endpoint: a node serving a FileStore.
class GridFtpServer {
 public:
  GridFtpServer(net::Network& net, net::NodeId node, FileStore& store)
      : net_(net), node_(node), store_(store) {}

  net::NodeId node() const { return node_; }
  FileStore& store() { return store_; }
  net::Network& network() { return net_; }

 private:
  net::Network& net_;
  net::NodeId node_;
  FileStore& store_;
};

class GridFtpClient {
 public:
  GridFtpClient(net::Network& net, net::NodeId node,
                GridFtpConfig cfg = {});

  net::NodeId node() const { return node_; }
  const GridFtpConfig& config() const { return cfg_; }

  using Done = std::function<void(Result<TransferStats>)>;

  /// Fetch a whole remote file into `local` under the same name
  /// (pass nullptr to discard, e.g. piping into a visualization).
  void get(GridFtpServer& server, const std::string& path, FileStore* local,
           Done done);

  /// Fetch `[offset, offset+len)` of the remote file; stored locally as
  /// `path` if `local` is given.
  void get_range(GridFtpServer& server, const std::string& path,
                 Bytes offset, Bytes len, FileStore* local, Done done);

  /// Upload a whole local file to the server's store.
  void put(GridFtpServer& server, const std::string& path, FileStore& local,
           Done done);

  /// Striped get: the file is served in round-robin chunk stripes by
  /// several servers holding replicas (the TeraGrid striped-GridFTP
  /// deployment). Data lands in `local` if given.
  void get_striped(const std::vector<GridFtpServer*>& servers,
                   const std::string& path, FileStore* local, Done done);

  /// Third-party transfer: this client orchestrates, data flows
  /// directly server-to-server (classic GridFTP; how SDSC and PSC
  /// replicated each other's archives, §8).
  void transfer(GridFtpServer& src, GridFtpServer& dst,
                const std::string& path, Done done);

 private:
  struct Plan {
    // Source extent per stream: [offset, offset + len)
    struct Slice {
      GridFtpServer* server;
      Bytes src_offset;
      Bytes dst_offset;
      Bytes len;
    };
    std::vector<Slice> slices;
    Bytes total = 0;
  };

  void run_transfer(Plan plan, bool upload, FileStore* sink_store,
                    Bytes sink_base, net::NodeId sink_node, Done done);

  net::Network& net_;
  net::NodeId node_;
  GridFtpConfig cfg_;
  // Pooled per-(remote,local) connections; a fresh vector per transfer
  // keeps streams independent like real GridFTP's data channels.
  std::vector<std::unique_ptr<net::TcpConnection>> live_conns_;
};

}  // namespace mgfs::gridftp
