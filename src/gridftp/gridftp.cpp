#include "gridftp/gridftp.hpp"

#include <algorithm>

namespace mgfs::gridftp {

GridFtpClient::GridFtpClient(net::Network& net, net::NodeId node,
                             GridFtpConfig cfg)
    : net_(net), node_(node), cfg_(cfg) {
  MGFS_ASSERT(cfg_.parallel_streams > 0 && cfg_.chunk > 0,
              "bad gridftp config");
}

void GridFtpClient::get(GridFtpServer& server, const std::string& path,
                        FileStore* local, Done done) {
  auto ext = server.store().lookup(path);
  if (!ext.ok()) {
    done(ext.error());
    return;
  }
  get_range(server, path, 0, ext->size, local, std::move(done));
}

void GridFtpClient::get_range(GridFtpServer& server, const std::string& path,
                              Bytes offset, Bytes len, FileStore* local,
                              Done done) {
  auto ext = server.store().lookup(path);
  if (!ext.ok()) {
    done(ext.error());
    return;
  }
  if (offset + len > ext->size || len == 0) {
    done(err(Errc::invalid_argument, "bad range for " + path));
    return;
  }
  Bytes local_base = 0;
  if (local != nullptr) {
    auto lext = local->add(path, len);
    if (!lext.ok()) {
      done(lext.error());
      return;
    }
    local_base = lext->offset;
  }
  Plan plan;
  plan.total = len;
  const std::size_t streams = cfg_.parallel_streams;
  const Bytes per = len / streams;
  Bytes pos = 0;
  for (std::size_t s = 0; s < streams; ++s) {
    const Bytes slice_len = (s + 1 == streams) ? len - pos : per;
    if (slice_len == 0) continue;
    plan.slices.push_back(
        {&server, ext->offset + offset + pos, pos, slice_len});
    pos += slice_len;
  }
  run_transfer(std::move(plan), /*upload=*/false, local, local_base, node_,
               std::move(done));
}

void GridFtpClient::put(GridFtpServer& server, const std::string& path,
                        FileStore& local, Done done) {
  auto lext = local.lookup(path);
  if (!lext.ok()) {
    done(lext.error());
    return;
  }
  auto rext = server.store().add(path, lext->size);
  if (!rext.ok()) {
    done(rext.error());
    return;
  }
  Plan plan;
  plan.total = lext->size;
  const std::size_t streams = cfg_.parallel_streams;
  const Bytes per = lext->size / streams;
  Bytes pos = 0;
  for (std::size_t s = 0; s < streams; ++s) {
    const Bytes slice_len = (s + 1 == streams) ? lext->size - pos : per;
    if (slice_len == 0) continue;
    // For uploads src is the *local* extent, dst the remote extent.
    plan.slices.push_back(
        {&server, lext->offset + pos, rext->offset + pos, slice_len});
    pos += slice_len;
  }
  run_transfer(std::move(plan), /*upload=*/true, &local, 0, node_,
               std::move(done));
}

void GridFtpClient::get_striped(const std::vector<GridFtpServer*>& servers,
                                const std::string& path, FileStore* local,
                                Done done) {
  MGFS_ASSERT(!servers.empty(), "striped get with no servers");
  auto ext = servers.front()->store().lookup(path);
  if (!ext.ok()) {
    done(ext.error());
    return;
  }
  Bytes local_base = 0;
  if (local != nullptr) {
    auto lext = local->add(path, ext->size);
    if (!lext.ok()) {
      done(lext.error());
      return;
    }
    local_base = lext->offset;
  }
  // Partition the file contiguously across servers, then across each
  // server's streams.
  Plan plan;
  plan.total = ext->size;
  const std::size_t n = servers.size();
  const std::size_t streams_per =
      std::max<std::size_t>(1, cfg_.parallel_streams / n);
  const Bytes per_server = ext->size / n;
  Bytes pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    GridFtpServer* srv = servers[i];
    auto sext = srv->store().lookup(path);
    if (!sext.ok()) {
      done(err(Errc::not_found, "replica missing on a stripe server"));
      return;
    }
    const Bytes server_len =
        (i + 1 == n) ? ext->size - pos : per_server;
    const Bytes per_stream = server_len / streams_per;
    Bytes spos = 0;
    for (std::size_t s = 0; s < streams_per; ++s) {
      const Bytes slice_len =
          (s + 1 == streams_per) ? server_len - spos : per_stream;
      if (slice_len == 0) continue;
      plan.slices.push_back({srv, sext->offset + pos + spos, pos + spos,
                             slice_len});
      spos += slice_len;
    }
    pos += server_len;
  }
  run_transfer(std::move(plan), /*upload=*/false, local, local_base, node_,
               std::move(done));
}

void GridFtpClient::transfer(GridFtpServer& src, GridFtpServer& dst,
                             const std::string& path, Done done) {
  auto ext = src.store().lookup(path);
  if (!ext.ok()) {
    done(ext.error());
    return;
  }
  auto dext = dst.store().add(path, ext->size);
  if (!dext.ok()) {
    done(dext.error());
    return;
  }
  Plan plan;
  plan.total = ext->size;
  const std::size_t streams = cfg_.parallel_streams;
  const Bytes per = ext->size / streams;
  Bytes pos = 0;
  for (std::size_t s = 0; s < streams; ++s) {
    const Bytes slice_len = (s + 1 == streams) ? ext->size - pos : per;
    if (slice_len == 0) continue;
    plan.slices.push_back({&src, ext->offset + pos, pos, slice_len});
    pos += slice_len;
  }
  run_transfer(std::move(plan), /*upload=*/false, &dst.store(),
               dext->offset, dst.node(), std::move(done));
}

void GridFtpClient::run_transfer(Plan plan, bool upload,
                                 FileStore* sink_store, Bytes sink_base,
                                 net::NodeId sink_node, Done done) {
  struct Shared {
    sim::Simulator* sim = nullptr;
    double start = 0;
    Bytes total = 0;
    Bytes completed = 0;
    std::size_t live_slices = 0;
    bool failed = false;
    std::size_t streams = 0;
    Done done;
  };
  auto sh = std::make_shared<Shared>();
  sh->sim = &net_.simulator();
  sh->start = sh->sim->now();
  sh->total = plan.total;
  sh->live_slices = plan.slices.size();
  sh->streams = plan.slices.size();
  sh->done = std::move(done);

  auto fail_once = [sh](Errc code, const std::string& what) {
    if (sh->failed) return;
    sh->failed = true;
    sh->done(err(code, what));
  };

  // Control channel: one round trip to the (first) server.
  GridFtpServer* first = plan.slices.front().server;
  net_.send(
      node_, first->node(), cfg_.control_bytes,
      [this, plan = std::move(plan), upload, sink_store, sink_base, sh,
       sink_node, fail_once]() mutable {
        net_.send(plan.slices.front().server->node(), node_,
                  cfg_.control_bytes, [] {});  // 150/226 reply, fire-and-forget

        for (const Plan::Slice& sl : plan.slices) {
          const net::NodeId src =
              upload ? node_ : sl.server->node();
          const net::NodeId dst =
              upload ? sl.server->node() : sink_node;
          live_conns_.push_back(std::make_unique<net::TcpConnection>(
              net_, src, dst, cfg_.tcp));
          net::TcpConnection* conn = live_conns_.back().get();

          struct Stream {
            Bytes src_pos, dst_pos, remaining;
            std::size_t inflight = 0;
          };
          auto st = std::make_shared<Stream>();
          st->src_pos = sl.src_offset;
          st->dst_pos = upload ? sl.dst_offset : sink_base + sl.dst_offset;
          st->remaining = sl.len;

          storage::BlockDevice* src_dev =
              upload ? &sink_store->device() : &sl.server->store().device();
          storage::BlockDevice* dst_dev = nullptr;
          if (upload) {
            dst_dev = &sl.server->store().device();
          } else if (sink_store != nullptr) {
            dst_dev = &sink_store->device();
          }

          // Double-buffered pump: disk read -> tcp -> disk write.
          auto pump = std::make_shared<std::function<void()>>();
          auto chunk_done = [sh, st, pump](Bytes n) {
            --st->inflight;
            sh->completed += n;
            if (!sh->failed && sh->completed == sh->total) {
              TransferStats stats;
              stats.bytes = sh->total;
              stats.seconds = sh->sim->now() - sh->start;
              stats.streams = sh->streams;
              sh->done(stats);
              return;
            }
            (*pump)();
          };
          *pump = [this, st, sh, conn, src_dev, dst_dev, chunk_done,
                   fail_once, pump] {
            while (st->inflight < 2 && st->remaining > 0 && !sh->failed) {
              const Bytes c = std::min(cfg_.chunk, st->remaining);
              st->remaining -= c;
              const Bytes rpos = st->src_pos;
              const Bytes wpos = st->dst_pos;
              st->src_pos += c;
              st->dst_pos += c;
              ++st->inflight;
              src_dev->io(rpos, c, false, [conn, c, wpos, dst_dev,
                                           chunk_done,
                                           fail_once](const Status& s) {
                if (!s.ok()) {
                  fail_once(Errc::io_error, "source disk: " + s.to_string());
                  return;
                }
                conn->send(
                    c,
                    [c, wpos, dst_dev, chunk_done, fail_once] {
                      if (dst_dev == nullptr) {
                        chunk_done(c);
                        return;
                      }
                      dst_dev->io(wpos, c, true,
                                  [c, chunk_done,
                                   fail_once](const Status& s2) {
                                    if (!s2.ok()) {
                                      fail_once(Errc::io_error,
                                                "sink disk: " +
                                                    s2.to_string());
                                      return;
                                    }
                                    chunk_done(c);
                                  });
                    },
                    [fail_once] {
                      fail_once(Errc::unavailable, "data channel lost");
                    });
              });
            }
          };
          (*pump)();
        }
      },
      [fail_once] { fail_once(Errc::unavailable, "control channel lost"); });
}

}  // namespace mgfs::gridftp
