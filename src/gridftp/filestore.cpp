#include "gridftp/filestore.hpp"

namespace mgfs::gridftp {

Result<Extent> FileStore::add(const std::string& name, Bytes size) {
  if (size == 0) return err(Errc::invalid_argument, "zero-size file");
  if (files_.count(name)) return err(Errc::exists, name);
  if (!initialized_) {
    holes_[0] = capacity();
    initialized_ = true;
  }
  // First fit.
  for (auto it = holes_.begin(); it != holes_.end(); ++it) {
    if (it->second >= size) {
      const Extent ext{it->first, size};
      const Bytes rest = it->second - size;
      const Bytes rest_off = it->first + size;
      holes_.erase(it);
      if (rest > 0) holes_[rest_off] = rest;
      files_[name] = ext;
      used_ += size;
      return ext;
    }
  }
  return err(Errc::no_space, "store full (or fragmented): " + name);
}

Result<Extent> FileStore::lookup(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return err(Errc::not_found, name);
  return it->second;
}

bool FileStore::contains(const std::string& name) const {
  return files_.count(name) > 0;
}

Status FileStore::remove(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return Status(Errc::not_found, name);
  Extent ext = it->second;
  files_.erase(it);
  used_ -= ext.size;
  // Insert hole and merge with neighbors.
  auto [hit, inserted] = holes_.emplace(ext.offset, ext.size);
  MGFS_ASSERT(inserted, "overlapping free extents");
  // Merge with next.
  auto next = std::next(hit);
  if (next != holes_.end() && hit->first + hit->second == next->first) {
    hit->second += next->second;
    holes_.erase(next);
  }
  // Merge with previous.
  if (hit != holes_.begin()) {
    auto prev = std::prev(hit);
    if (prev->first + prev->second == hit->first) {
      prev->second += hit->second;
      holes_.erase(hit);
    }
  }
  return Status{};
}

}  // namespace mgfs::gridftp
