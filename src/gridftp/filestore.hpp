// FileStore: a flat name -> extent catalog over one block device.
//
// This is the "local scratch disk at the compute site" of the pre-GFS
// grid workflow: GridFTP stages whole files into it before a job runs
// and drains results out of it afterwards (paper §1). Files are laid
// out contiguously; delete frees the extent (first-fit reuse).
#pragma once

#include <map>
#include <string>

#include "common/result.hpp"
#include "storage/block_device.hpp"

namespace mgfs::gridftp {

struct Extent {
  Bytes offset = 0;
  Bytes size = 0;
};

class FileStore {
 public:
  explicit FileStore(storage::BlockDevice& dev) : dev_(dev) {}

  storage::BlockDevice& device() { return dev_; }
  Bytes capacity() const { return dev_.capacity(); }
  Bytes used() const { return used_; }
  Bytes free_bytes() const { return capacity() - used_; }
  std::size_t file_count() const { return files_.size(); }

  /// Reserve space for a file (no_space if it cannot fit).
  Result<Extent> add(const std::string& name, Bytes size);
  Result<Extent> lookup(const std::string& name) const;
  bool contains(const std::string& name) const;
  Status remove(const std::string& name);

 private:
  storage::BlockDevice& dev_;
  std::map<std::string, Extent> files_;
  // free list kept sorted by offset; adjacent holes merge on free
  std::map<Bytes, Bytes> holes_;  // offset -> size
  bool initialized_ = false;
  Bytes used_ = 0;
};

}  // namespace mgfs::gridftp
